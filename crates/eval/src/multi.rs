//! Multi-intent evaluation (Eqs. 8–9): the `MI-P`, `MI-R`, `MI-F` macro
//! averages and the strict exact-match `MI-Acc` of Table 5.

use crate::binary::BinaryReport;
use flexer_types::LabelMatrix;

/// Multi-intent report over a prediction matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiIntentReport {
    /// Per-intent single-intent reports (id order).
    pub per_intent: Vec<BinaryReport>,
    /// Macro-average precision (Eq. 8 with V = P).
    pub mi_precision: f64,
    /// Macro-average recall.
    pub mi_recall: f64,
    /// Macro-average F1.
    pub mi_f1: f64,
    /// Exact-match multi-label accuracy (Eq. 9): the fraction of pairs
    /// whose *entire* intent vector is predicted correctly.
    pub mi_accuracy: f64,
}

impl MultiIntentReport {
    /// Evaluates a predicted label matrix against the golden one. Both must
    /// share the same shape (pairs × intents).
    pub fn evaluate(predictions: &LabelMatrix, golden: &LabelMatrix) -> Self {
        assert_eq!(predictions.n_pairs(), golden.n_pairs(), "pair count mismatch");
        assert_eq!(predictions.n_intents(), golden.n_intents(), "intent count mismatch");
        let n_intents = golden.n_intents();
        let per_intent: Vec<BinaryReport> = (0..n_intents)
            .map(|p| BinaryReport::from_predictions(&predictions.column(p), &golden.column(p)))
            .collect();
        let avg = |f: fn(&BinaryReport) -> f64| -> f64 {
            if per_intent.is_empty() {
                0.0
            } else {
                per_intent.iter().map(f).sum::<f64>() / per_intent.len() as f64
            }
        };
        let n_pairs = golden.n_pairs();
        let exact = (0..n_pairs)
            .filter(|&i| (0..n_intents).all(|p| predictions.get(i, p) == golden.get(i, p)))
            .count();
        let mi_accuracy = if n_pairs == 0 { 0.0 } else { exact as f64 / n_pairs as f64 };
        Self {
            mi_precision: avg(|r| r.precision),
            mi_recall: avg(|r| r.recall),
            mi_f1: avg(|r| r.f1),
            mi_accuracy,
            per_intent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(cols: &[Vec<bool>]) -> LabelMatrix {
        LabelMatrix::from_columns(cols).unwrap()
    }

    #[test]
    fn perfect_predictions() {
        let golden = labels(&[vec![true, false, true], vec![false, false, true]]);
        let r = MultiIntentReport::evaluate(&golden, &golden);
        assert_eq!(r.mi_f1, 1.0);
        assert_eq!(r.mi_accuracy, 1.0);
        assert_eq!(r.per_intent.len(), 2);
    }

    #[test]
    fn macro_average_is_mean_of_intents() {
        let golden = labels(&[vec![true, true, false, false], vec![true, true, true, true]]);
        // Intent 0 predicted perfectly; intent 1 predicted half right
        // (recall 0.5, precision 1.0).
        let preds = labels(&[vec![true, true, false, false], vec![true, true, false, false]]);
        let r = MultiIntentReport::evaluate(&preds, &golden);
        let f0 = r.per_intent[0].f1;
        let f1 = r.per_intent[1].f1;
        assert_eq!(f0, 1.0);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.mi_f1 - (f0 + f1) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn mi_acc_stricter_than_mi_f1() {
        // One wrong intent per pair makes MI-Acc 0 even though per-intent
        // scores stay high — the "far more strict" note of §5.2.3.
        let golden = labels(&[vec![true, true], vec![true, true]]);
        let preds = labels(&[vec![true, false], vec![false, true]]);
        let r = MultiIntentReport::evaluate(&preds, &golden);
        assert_eq!(r.mi_accuracy, 0.0);
        assert!(r.mi_f1 > 0.5);
    }

    #[test]
    fn exact_match_counting() {
        let golden = labels(&[vec![true, false, true, false]]);
        let preds = labels(&[vec![true, true, true, false]]);
        let r = MultiIntentReport::evaluate(&preds, &golden);
        assert_eq!(r.mi_accuracy, 0.75);
    }

    #[test]
    fn empty_matrices() {
        let golden = LabelMatrix::zeros(0, 2);
        let r = MultiIntentReport::evaluate(&golden, &golden);
        assert_eq!(r.mi_accuracy, 0.0);
    }

    #[test]
    #[should_panic(expected = "intent count mismatch")]
    fn shape_checked() {
        let a = LabelMatrix::zeros(2, 2);
        let b = LabelMatrix::zeros(2, 3);
        let _ = MultiIntentReport::evaluate(&a, &b);
    }
}
