//! Property tests for the candidate-generation subsystem: the batch
//! blocker is exactly the pairwise `survives` predicate at `min_shared =
//! 1` (no silent pair loss beyond the bucket cap), the incremental index
//! agrees with the batch pass, and candidate queries are insensitive to
//! insertion order.

use flexer_block::{
    BlockerState, CandidateGenerator, ExhaustivePairs, NGramBlocker, NGramIndex, ShardedBlocker,
};
use flexer_types::{
    AnnBlockerConfig, CandidateGenConfig, Dataset, NGramBlockerConfig, PairRef, Record, ShardConfig,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn dataset(titles: &[String]) -> Dataset {
    Dataset::from_records(titles.iter().map(|t| Record::with_title(0, t.clone())).collect())
}

fn title_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-z]{1,6}", 0..5).prop_map(|words| words.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With `min_shared = 1` and no bucket cap, `survives(a, b)` holds iff
    /// the pair appears in `block()`'s output — the blocker loses nothing
    /// the pairwise predicate would keep.
    #[test]
    fn block_emits_exactly_the_surviving_pairs(
        titles in prop::collection::vec(title_strategy(), 2..12),
    ) {
        let blocker = NGramBlocker { q: 4, min_shared: 1, max_bucket: usize::MAX };
        let out = blocker.block(&dataset(&titles));
        let blocked: HashSet<PairRef> = out.candidates.pairs().iter().copied().collect();
        for a in 0..titles.len() {
            for b in a + 1..titles.len() {
                let pair = PairRef::new(a, b).unwrap();
                prop_assert_eq!(
                    blocker.survives(&titles[a], &titles[b]),
                    blocked.contains(&pair),
                    "pair ({}, {}): {:?} vs {:?}", a, b, &titles[a], &titles[b]
                );
            }
        }
        prop_assert_eq!(out.report.candidates, out.candidates.len());
        prop_assert_eq!(out.report.grams_skipped, 0);
        prop_assert_eq!(out.report.comparisons_suppressed, 0);
    }

    /// The incremental index and the batch blocker agree: b is a candidate
    /// of a's title iff the batch pass emits the pair (for any cap).
    #[test]
    fn incremental_agrees_with_batch(
        titles in prop::collection::vec(title_strategy(), 2..10),
        max_bucket in 1usize..8,
    ) {
        let config = NGramBlockerConfig { q: 4, min_shared: 1, max_bucket };
        let batch = NGramBlocker::from_config(config).block(&dataset(&titles));
        let blocked: HashSet<PairRef> = batch.candidates.pairs().iter().copied().collect();
        let mut index = NGramIndex::new(config);
        for t in &titles {
            index.insert(t);
        }
        for (a, title) in titles.iter().enumerate() {
            let cands: HashSet<usize> = index.candidates(title).into_iter().collect();
            for b in 0..titles.len() {
                if a == b {
                    continue;
                }
                prop_assert_eq!(
                    blocked.contains(&PairRef::new(a, b).unwrap()),
                    cands.contains(&b),
                    "pair ({}, {})", a, b
                );
            }
        }
    }

    /// Candidate queries depend only on the record *set*, not insertion
    /// order (order-insensitive determinism).
    #[test]
    fn candidates_are_order_insensitive(
        titles in prop::collection::vec(title_strategy(), 1..10),
        query in title_strategy(),
        rot in 0usize..10,
    ) {
        let config = CandidateGenConfig::NGram(NGramBlockerConfig {
            q: 4,
            min_shared: 1,
            max_bucket: 6,
        });
        let rot = rot % titles.len();
        let rotated: Vec<&str> = titles[rot..].iter().chain(&titles[..rot]).map(|s| s.as_str()).collect();
        let a = BlockerState::build(&config, titles.iter().map(|s| s.as_str()));
        let b = BlockerState::build(&config, rotated.iter().copied());
        let ca: HashSet<&str> = a
            .candidates(&query)
            .unwrap()
            .into_iter()
            .map(|id| titles[id].as_str())
            .collect();
        let cb: HashSet<&str> =
            b.candidates(&query).unwrap().into_iter().map(|id| rotated[id]).collect();
        prop_assert_eq!(ca, cb);
    }

    /// Every blocked candidate set is a subset of the exhaustive one.
    #[test]
    fn blocked_is_subset_of_exhaustive(
        titles in prop::collection::vec(title_strategy(), 2..10),
    ) {
        let d = dataset(&titles);
        let all: HashSet<PairRef> =
            ExhaustivePairs.generate(&d).candidates.pairs().iter().copied().collect();
        let blocked = NGramBlocker::default().generate(&d);
        for (_, pair) in blocked.candidates.iter() {
            prop_assert!(all.contains(&pair));
        }
    }

    /// The sharding equivalence lemma, q-gram backend: for any titles,
    /// shard count, bucket cap and query, the sharded fan-out/merge equals
    /// the monolithic candidate set exactly, and the merged state is the
    /// monolithic state.
    #[test]
    fn sharded_ngram_equals_monolithic(
        titles in prop::collection::vec(title_strategy(), 0..14),
        query in title_strategy(),
        n_shards in 1usize..6,
        max_bucket in 1usize..8,
    ) {
        let gen = CandidateGenConfig::NGram(NGramBlockerConfig { q: 4, min_shared: 1, max_bucket });
        let mono = BlockerState::build(&gen, titles.iter().map(|s| s.as_str()));
        let sharded =
            ShardedBlocker::build(&gen, ShardConfig::of(n_shards), titles.iter().map(|s| s.as_str()));
        prop_assert_eq!(sharded.candidates(&query), mono.candidates(&query));
        prop_assert_eq!(sharded.merged(), mono);
    }

    /// The sharding equivalence lemma, ANN backend.
    #[test]
    fn sharded_ann_equals_monolithic(
        titles in prop::collection::vec(title_strategy(), 0..14),
        query in title_strategy(),
        n_shards in 1usize..6,
        k in 1usize..5,
    ) {
        let gen = CandidateGenConfig::Ann(AnnBlockerConfig { q: 3, dim: 16, k });
        let mono = BlockerState::build(&gen, titles.iter().map(|s| s.as_str()));
        let sharded =
            ShardedBlocker::build(&gen, ShardConfig::of(n_shards), titles.iter().map(|s| s.as_str()));
        prop_assert_eq!(sharded.candidates(&query), mono.candidates(&query));
        prop_assert_eq!(sharded.merged(), mono);
    }

    /// Sharded truncation is the exact inverse of inserts, and batched
    /// inserts equal serial ones.
    #[test]
    fn sharded_insert_batch_and_truncation(
        titles in prop::collection::vec(title_strategy(), 1..12),
        split in 0usize..12,
        n_shards in 1usize..5,
    ) {
        let gen = CandidateGenConfig::NGram(NGramBlockerConfig::default());
        let split = split % titles.len();
        let refs: Vec<&str> = titles.iter().map(|s| s.as_str()).collect();
        let mut serial = ShardedBlocker::new(&gen, ShardConfig::of(n_shards));
        for t in &refs {
            serial.insert(t);
        }
        let mut batched = ShardedBlocker::new(&gen, ShardConfig::of(n_shards));
        batched.insert_batch(&refs);
        prop_assert_eq!(&serial, &batched);
        let prefix =
            ShardedBlocker::build(&gen, ShardConfig::of(n_shards), refs[..split].iter().copied());
        prop_assert_eq!(serial.truncated(split), prefix);
    }
}
