//! [`ShardedBlocker`] — the candidate-generation tier partitioned across
//! N shards behind a deterministic title router.
//!
//! Each shard holds a [`BlockerState`] over only the records routed to it
//! (plus the member list mapping shard-local ids back to global record
//! ids), so per-shard indexes stay `n/N`-sized and candidate queries fan
//! out over shard-local state via `flexer-par`. The merge is exact, not
//! approximate — for any shard count the merged candidate set is
//! **identical** to what the monolithic blocker over the same records
//! would return:
//!
//! * **q-gram**: a record's shared-gram count with a query is computed
//!   entirely inside its own shard (gram sets are per-record), so the
//!   per-shard surviving sets are disjoint and their union is the global
//!   surviving set — *provided* the stop-gram decision is global. Shard
//!   buckets are `~1/N` of global buckets, so a per-shard `max_bucket`
//!   test would keep grams the monolithic blocker skips; the sharded
//!   blocker therefore maintains global gram counts and pre-filters the
//!   query's grams against them before fanning out
//!   ([`NGramIndex::candidates_for_grams`] applies no local cap).
//! * **ANN**: every global top-k record is also in its own shard's top-k,
//!   so merging all shards' hits by `(distance, global id)` and truncating
//!   to `k` reproduces the monolithic `(distance, insertion-id)` ordering
//!   exactly — shard-local insertion order is global insertion order
//!   restricted to the shard.
//! * **Exhaustive**: stateless on both sides.
//!
//! That equivalence (tested here and property-tested in
//! `tests/proptests.rs`) is what lets the serving tier treat sharding as
//! a pure scale-out move: same answers, shard-local work.

use crate::ngram::gram_vec;
use crate::{AnnRecordIndex, BlockerState, NGramIndex};
use flexer_types::{
    CandidateGenConfig, RecordId, ShardConfig, ShardRouter, WireCandidates, WireQuery,
};
use std::collections::HashMap;

/// Plans the shard-local half of a candidate query from the *global*
/// blocker state: the stop-gram-filtered gram list (q-gram) or the
/// embedded query vector (ANN). `None` means no fan-out is needed — the
/// exhaustive backend pairs against every record without consulting
/// shards. This is the piece a networked router executes locally before
/// fanning [`local_answer`] out to shard servers; the in-process
/// [`ShardedBlocker::candidates`] runs the exact same function, so both
/// deployments answer bit-identically by construction.
pub fn plan_query(
    gen: &CandidateGenConfig,
    gram_counts: &HashMap<u64, u32>,
    title: &str,
) -> Option<WireQuery> {
    match gen {
        CandidateGenConfig::Exhaustive => None,
        CandidateGenConfig::NGram(c) => {
            let kept: Vec<u64> = gram_vec(title, c.q)
                .into_iter()
                .filter(|g| gram_counts.get(g).map_or(true, |&n| n as usize <= c.max_bucket))
                .collect();
            Some(WireQuery::Grams(kept))
        }
        CandidateGenConfig::Ann(c) => Some(WireQuery::Embedding(crate::ann::embed_title(title, c))),
    }
}

/// One shard's answer to a planned query, over its own blocker state and
/// global-id member list: q-gram shared-count survivors as global ids, or
/// the shard-local ANN top-k as `(distance, global id)`. Runs identically
/// inside [`ShardedBlocker`] and inside a shard-server process. `None`
/// when the query does not match the shard's backend (a protocol error on
/// the networked path, unreachable in process).
pub fn local_answer(
    query: &WireQuery,
    state: &BlockerState,
    members: &[u32],
) -> Option<WireCandidates> {
    match (query, state) {
        (WireQuery::Grams(kept), BlockerState::NGram(ix)) => Some(WireCandidates::Ids(
            ix.candidates_for_grams(kept).into_iter().map(|l| members[l]).collect(),
        )),
        (WireQuery::Embedding(q), BlockerState::Ann(ix)) => Some(WireCandidates::Hits(
            ix.nearest(q).into_iter().map(|n| (n.dist, members[n.id])).collect(),
        )),
        _ => None,
    }
}

/// Merges per-shard answers back into the global candidate set, exactly
/// as the monolithic blocker would have produced it: q-gram survivor sets
/// are disjoint across shards, so their union sorted ascending is the
/// global set; ANN hits merge by `(distance, global id)` — the monolithic
/// insertion-id ordering — and truncate to the backend's `k`. Non-finite
/// distances (impossible locally, conceivable from a corrupt peer) are
/// dropped rather than trusted into the sort.
pub fn merge_candidates(
    gen: &CandidateGenConfig,
    answers: impl IntoIterator<Item = WireCandidates>,
) -> Vec<RecordId> {
    let mut ids: Vec<u32> = Vec::new();
    let mut hits: Vec<(f32, u32)> = Vec::new();
    for answer in answers {
        match answer {
            WireCandidates::Ids(v) => ids.extend(v),
            WireCandidates::Hits(v) => hits.extend(v),
        }
    }
    if let CandidateGenConfig::Ann(c) = gen {
        hits.retain(|(d, _)| d.is_finite());
        hits.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("finite after retain").then_with(|| a.1.cmp(&b.1))
        });
        hits.truncate(c.k);
        ids.extend(hits.into_iter().map(|(_, g)| g));
    }
    let mut out: Vec<RecordId> = ids.into_iter().map(|g| g as RecordId).collect();
    out.sort_unstable();
    out
}

/// Whole nanoseconds since `t0` (saturating into `u64`).
fn elapsed_ns(t0: std::time::Instant) -> u64 {
    t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// An incremental blocker partitioned across N shards (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedBlocker {
    router: ShardRouter,
    gen: CandidateGenConfig,
    /// Shard-local blocker state; local record ids are per-shard sequential.
    shards: Vec<BlockerState>,
    /// `members[s][local] = global` record id, ascending by construction.
    members: Vec<Vec<u32>>,
    /// Global gram → total bucket size across shards (q-gram backend only):
    /// the corpus-level stop-gram signal per-shard buckets cannot provide.
    gram_counts: HashMap<u64, u32>,
    n_records: usize,
}

impl ShardedBlocker {
    /// Empty sharded blocker for a candidate-generation backend.
    pub fn new(gen: &CandidateGenConfig, config: ShardConfig) -> Self {
        let router = ShardRouter::new(config);
        let shards = (0..config.n_shards)
            .map(|_| BlockerState::build(gen, std::iter::empty::<&str>()))
            .collect();
        Self {
            router,
            gen: *gen,
            shards,
            members: vec![Vec::new(); config.n_shards],
            gram_counts: HashMap::new(),
            n_records: 0,
        }
    }

    /// Builds a sharded blocker by routing `titles` in record-id order —
    /// the partitioned equivalent of [`BlockerState::build`].
    pub fn build<'a>(
        gen: &CandidateGenConfig,
        config: ShardConfig,
        titles: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        let mut out = Self::new(gen, config);
        for t in titles {
            out.insert(t);
        }
        out
    }

    /// Routes and indexes one record title; returns `(shard, global id)`.
    /// Global ids are assigned sequentially, so callers must insert in
    /// record-id order (the same contract as [`BlockerState::insert`]).
    pub fn insert(&mut self, title: &str) -> (usize, RecordId) {
        let shard = self.router.route(title);
        let global = self.n_records;
        self.shards[shard].insert(title);
        self.members[shard].push(global as u32);
        self.count_grams(title);
        self.n_records += 1;
        (shard, global)
    }

    /// Batched insert: routes every title, fans the shard-local index
    /// updates out across shards in parallel (shards are independent), and
    /// applies the global bookkeeping serially in input order. The final
    /// state is identical to inserting the titles one by one.
    pub fn insert_batch(&mut self, titles: &[&str]) -> Vec<(usize, RecordId)> {
        let routes: Vec<usize> = titles.iter().map(|t| self.router.route(t)).collect();
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, &s) in routes.iter().enumerate() {
            per_shard[s].push(i);
        }
        // Group-by-shard, parallel shard-local ingest: each shard absorbs
        // its titles in input order, exactly as serial inserts would. Each
        // shard's wall time aggregates under `shard.ingest.local.<s>`, the
        // balance evidence the shard bench reports (max/mean imbalance).
        flexer_par::for_each_row_mut(&mut self.shards, 1, |s, shard| {
            let rec = flexer_obs::global();
            let t0 = rec.is_enabled().then(std::time::Instant::now);
            for &i in &per_shard[s] {
                shard[0].insert(titles[i]);
            }
            if let Some(t0) = t0 {
                rec.record_span_ns_indexed("shard.ingest.local", s, elapsed_ns(t0));
            }
        });
        // Single merge step: global ids, member lists and gram counts, in
        // input order.
        let rec = flexer_obs::global();
        let t0 = rec.is_enabled().then(std::time::Instant::now);
        let base = self.n_records;
        let mut out = Vec::with_capacity(titles.len());
        for (i, (&shard, title)) in routes.iter().zip(titles).enumerate() {
            let global = base + i;
            self.members[shard].push(global as u32);
            self.count_grams(title);
            out.push((shard, global));
        }
        self.n_records += titles.len();
        if let Some(t0) = t0 {
            rec.record_span_ns("shard.ingest.merge", elapsed_ns(t0));
        }
        out
    }

    fn count_grams(&mut self, title: &str) {
        if let CandidateGenConfig::NGram(c) = self.gen {
            for g in gram_vec(title, c.q) {
                *self.gram_counts.entry(g).or_insert(0) += 1;
            }
        }
    }

    /// Candidate record ids (global, ascending) for a new title: the fan
    /// out / merge of the per-shard candidate queries. `None` means "all
    /// records" (the exhaustive backend). The result is identical to the
    /// monolithic [`BlockerState::candidates`] over the same records, for
    /// any shard count.
    pub fn candidates(&self, title: &str) -> Option<Vec<RecordId>> {
        let rec = flexer_obs::global();
        let query = plan_query(&self.gen, &self.gram_counts, title)?;
        let t0 = rec.is_enabled().then(std::time::Instant::now);
        let answers = self.fan_out(&query);
        let t1 = rec.is_enabled().then(std::time::Instant::now);
        let out = merge_candidates(&self.gen, answers);
        if let (Some(t0), Some(t1)) = (t0, t1) {
            rec.record_span_ns("shard.fanout", (t1 - t0).as_nanos() as u64);
            rec.record_span_ns("shard.merge", elapsed_ns(t1));
        }
        Some(out)
    }

    /// The per-shard halves of a planned query, fanned out via
    /// `flexer-par` — the in-process equivalent of the router's
    /// one-request-per-shard-server fan-out.
    fn fan_out(&self, query: &WireQuery) -> Vec<WireCandidates> {
        flexer_par::parallel_map(self.shards.len(), |s| {
            local_answer(query, &self.shards[s], &self.members[s])
                .expect("shard backend matches the planned query")
        })
    }

    /// Shard-local candidate work for a title, without the merge: the
    /// number of candidates each shard's query produces. For q-gram
    /// backends the per-shard surviving sets are disjoint, so the counts
    /// sum to the global candidate count; for ANN they are the merged
    /// top-k attributed back to the owning shards. `None` for the
    /// exhaustive backend (shards hold no state).
    pub fn local_candidate_counts(&self, title: &str) -> Option<Vec<usize>> {
        let query = plan_query(&self.gen, &self.gram_counts, title)?;
        let answers = self.fan_out(&query);
        match &self.gen {
            CandidateGenConfig::Exhaustive => None,
            CandidateGenConfig::NGram(_) => Some(
                answers
                    .iter()
                    .map(|a| match a {
                        WireCandidates::Ids(v) => v.len(),
                        WireCandidates::Hits(v) => v.len(),
                    })
                    .collect(),
            ),
            CandidateGenConfig::Ann(_) => {
                // Attribute each record of the merged top-k back to its
                // owning shard (every global id lives on exactly one).
                let merged = merge_candidates(&self.gen, answers.iter().cloned());
                Some(
                    answers
                        .iter()
                        .map(|a| match a {
                            WireCandidates::Hits(v) => v
                                .iter()
                                .filter(|(_, g)| merged.binary_search(&(*g as RecordId)).is_ok())
                                .count(),
                            WireCandidates::Ids(v) => v.len(),
                        })
                        .collect(),
                )
            }
        }
    }

    /// A copy truncated back to the first `n_records` global records — the
    /// exact inverse of the inserts past that watermark, shard by shard.
    pub fn truncated(&self, n_records: usize) -> Self {
        let n = n_records.min(self.n_records);
        let limit = n as u32;
        let members: Vec<Vec<u32>> =
            self.members.iter().map(|m| m[..m.partition_point(|&g| g < limit)].to_vec()).collect();
        let shards: Vec<BlockerState> =
            self.shards.iter().zip(&members).map(|(s, m)| s.truncated(m.len())).collect();
        let mut out = Self {
            router: self.router,
            gen: self.gen,
            shards,
            members,
            gram_counts: HashMap::new(),
            n_records: n,
        };
        out.recount_grams();
        out
    }

    /// Reassembles the monolithic [`BlockerState`] the shards partition —
    /// equal to building the unsharded state over the same titles in
    /// global id order (tested). Used when an unsharded service loads a
    /// sharded snapshot.
    pub fn merged(&self) -> BlockerState {
        match &self.gen {
            CandidateGenConfig::Exhaustive => BlockerState::Exhaustive,
            CandidateGenConfig::NGram(c) => {
                let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
                for (s, shard) in self.shards.iter().enumerate() {
                    let BlockerState::NGram(ix) = shard else {
                        unreachable!("q-gram config implies q-gram shards")
                    };
                    for (g, ids) in ix.sorted_buckets() {
                        buckets
                            .entry(g)
                            .or_default()
                            .extend(ids.iter().map(|&l| self.members[s][l as usize]));
                    }
                }
                let mut parts: Vec<(u64, Vec<u32>)> = buckets
                    .into_iter()
                    .map(|(g, mut ids)| {
                        ids.sort_unstable();
                        (g, ids)
                    })
                    .collect();
                parts.sort_unstable_by_key(|&(g, _)| g);
                BlockerState::NGram(
                    NGramIndex::from_parts(*c, self.n_records, parts)
                        .expect("merged shards form a valid index"),
                )
            }
            CandidateGenConfig::Ann(c) => {
                let mut data = vec![0.0f32; self.n_records * c.dim];
                for (s, shard) in self.shards.iter().enumerate() {
                    let BlockerState::Ann(ix) = shard else {
                        unreachable!("ANN config implies ANN shards")
                    };
                    for (local, &global) in self.members[s].iter().enumerate() {
                        let g = global as usize;
                        data[g * c.dim..(g + 1) * c.dim]
                            .copy_from_slice(&ix.data()[local * c.dim..(local + 1) * c.dim]);
                    }
                }
                BlockerState::Ann(
                    AnnRecordIndex::from_parts(*c, data).expect("merged shards form a valid index"),
                )
            }
        }
    }

    /// Reassembles a sharded blocker from serialized parts, validating
    /// that the members are a partition of `0..n_records` and that every
    /// shard runs the same backend. (Routing consistency cannot be checked
    /// here — titles are not part of the state — so decoders trust the
    /// writer's routing, exactly as the monolithic codec trusts insertion
    /// order.)
    pub fn from_parts(
        config: ShardConfig,
        shards: Vec<BlockerState>,
        members: Vec<Vec<u32>>,
        n_records: usize,
    ) -> Result<Self, String> {
        config.validate()?;
        if shards.len() != config.n_shards {
            return Err(format!(
                "{} shard states for a {}-shard config",
                shards.len(),
                config.n_shards
            ));
        }
        if members.len() != shards.len() {
            return Err(format!("{} member lists for {} shards", members.len(), shards.len()));
        }
        let gen = shards[0].gen_config();
        for (s, state) in shards.iter().enumerate() {
            if state.gen_config() != gen {
                return Err(format!("shard {s} runs a different backend than shard 0"));
            }
            if !matches!(gen, CandidateGenConfig::Exhaustive) && state.len() != members[s].len() {
                return Err(format!(
                    "shard {s} indexes {} records but lists {} members",
                    state.len(),
                    members[s].len()
                ));
            }
            if !members[s].windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("shard {s} member ids are not strictly ascending"));
            }
        }
        let mut all: Vec<u32> = members.iter().flatten().copied().collect();
        all.sort_unstable();
        if all.len() != n_records || all.iter().enumerate().any(|(i, &g)| g as usize != i) {
            return Err(format!("shard members do not partition 0..{n_records} exactly"));
        }
        let mut out = Self {
            router: ShardRouter::new(config),
            gen,
            shards,
            members,
            gram_counts: HashMap::new(),
            n_records,
        };
        out.recount_grams();
        Ok(out)
    }

    /// Rebuilds the global gram counts from the per-shard buckets (they
    /// are derived state, never serialized).
    fn recount_grams(&mut self) {
        self.gram_counts.clear();
        for shard in &self.shards {
            if let BlockerState::NGram(ix) = shard {
                for (g, ids) in ix.sorted_buckets() {
                    *self.gram_counts.entry(g).or_insert(0) += ids.len() as u32;
                }
            }
        }
    }

    /// Number of records indexed across all shards.
    pub fn len(&self) -> usize {
        self.n_records
    }

    /// Whether no records are indexed.
    pub fn is_empty(&self) -> bool {
        self.n_records == 0
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard configuration.
    pub fn shard_config(&self) -> ShardConfig {
        self.router.config()
    }

    /// The candidate-generation backend every shard runs.
    pub fn gen_config(&self) -> CandidateGenConfig {
        self.gen
    }

    /// Short backend name for logs and bench output.
    pub fn kind_name(&self) -> &'static str {
        self.gen.name()
    }

    /// The shard a title routes to.
    pub fn shard_of(&self, title: &str) -> usize {
        self.router.route(title)
    }

    /// Per-shard blocker states (serialization / inspection).
    pub fn shards(&self) -> &[BlockerState] {
        &self.shards
    }

    /// Per-shard global-id member lists (serialization / inspection).
    pub fn members(&self) -> &[Vec<u32>] {
        &self.members
    }

    /// Records held by each shard — the balance diagnostic benches report.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.members.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_types::{AnnBlockerConfig, NGramBlockerConfig};

    fn titles() -> Vec<String> {
        (0..40)
            .map(|i| match i % 4 {
                0 => format!("nike lunar force model {i}"),
                1 => format!("adidas superstar mesh {i}"),
                2 => format!("philips sonicare head {i}"),
                _ => format!("canon eos camera body {i}"),
            })
            .collect()
    }

    fn assert_equivalent(gen: &CandidateGenConfig, queries: &[&str]) {
        let titles = titles();
        let mono = BlockerState::build(gen, titles.iter().map(|t| t.as_str()));
        for n_shards in [1usize, 2, 3, 7] {
            let sharded = ShardedBlocker::build(
                gen,
                ShardConfig::of(n_shards),
                titles.iter().map(|t| t.as_str()),
            );
            assert_eq!(sharded.len(), titles.len());
            for q in queries {
                let merged = sharded.candidates(q);
                assert_eq!(merged, mono.candidates(q), "{n_shards} shards, query {q:?}");
                let counts = sharded.local_candidate_counts(q);
                assert_eq!(
                    counts.as_ref().map(|c| c.iter().sum::<usize>()),
                    merged.as_ref().map(Vec::len),
                    "{n_shards} shards, query {q:?}: local counts must sum to the merge"
                );
                assert_eq!(counts.map(|c| c.len()), merged.map(|_| n_shards));
            }
            assert_eq!(sharded.merged(), mono, "{n_shards} shards: merged state");
        }
    }

    #[test]
    fn ngram_sharding_is_exactly_the_monolithic_blocker() {
        assert_equivalent(
            &CandidateGenConfig::NGram(NGramBlockerConfig::default()),
            &["nike lunar force", "sonicare replacement head", "zzzz qqqq", ""],
        );
    }

    #[test]
    fn ngram_stop_gram_decision_is_global() {
        // A gram shared by every title: global bucket (40) blows a cap of
        // 8, but each of 7 shards holds ≤ 8 — a per-shard cap would keep
        // it and over-generate candidates.
        let gen =
            CandidateGenConfig::NGram(NGramBlockerConfig { q: 4, min_shared: 1, max_bucket: 8 });
        let shared: Vec<String> = (0..40).map(|i| format!("common stem {i}")).collect();
        let mono = BlockerState::build(&gen, shared.iter().map(|t| t.as_str()));
        let sharded =
            ShardedBlocker::build(&gen, ShardConfig::of(7), shared.iter().map(|t| t.as_str()));
        let query = "common stem fresh";
        assert_eq!(sharded.candidates(query), mono.candidates(query));
    }

    #[test]
    fn ann_sharding_is_exactly_the_monolithic_blocker() {
        assert_equivalent(
            &CandidateGenConfig::Ann(AnnBlockerConfig { q: 3, dim: 32, k: 5 }),
            &["nike lunar force", "canon camera", "unrelated zzzz"],
        );
    }

    #[test]
    fn exhaustive_sharding_is_stateless() {
        let gen = CandidateGenConfig::Exhaustive;
        let titles = titles();
        let sharded =
            ShardedBlocker::build(&gen, ShardConfig::of(3), titles.iter().map(|t| t.as_str()));
        assert_eq!(sharded.candidates("anything"), None);
        assert_eq!(sharded.merged(), BlockerState::Exhaustive);
        assert_eq!(sharded.shard_sizes().iter().sum::<usize>(), titles.len());
    }

    #[test]
    fn insert_batch_matches_serial_inserts() {
        let gen = CandidateGenConfig::NGram(NGramBlockerConfig::default());
        let titles = titles();
        let refs: Vec<&str> = titles.iter().map(|t| t.as_str()).collect();
        let mut serial = ShardedBlocker::new(&gen, ShardConfig::of(4));
        let serial_ids: Vec<(usize, RecordId)> = refs.iter().map(|t| serial.insert(t)).collect();
        let mut batched = ShardedBlocker::new(&gen, ShardConfig::of(4));
        let batch_ids = batched.insert_batch(&refs);
        assert_eq!(serial_ids, batch_ids);
        assert_eq!(serial, batched);
    }

    #[test]
    fn truncation_is_exact_inverse_of_inserts() {
        let gen = CandidateGenConfig::NGram(NGramBlockerConfig::default());
        let titles = titles();
        let mut sharded = ShardedBlocker::build(
            &gen,
            ShardConfig::of(3),
            titles[..25].iter().map(|t| t.as_str()),
        );
        let watermark = sharded.clone();
        for t in &titles[25..] {
            sharded.insert(t);
        }
        assert_eq!(sharded.truncated(25), watermark);
        assert_eq!(sharded.truncated(100), sharded);
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let gen = CandidateGenConfig::NGram(NGramBlockerConfig::default());
        let titles = titles();
        let sharded =
            ShardedBlocker::build(&gen, ShardConfig::of(3), titles.iter().map(|t| t.as_str()));
        let rebuilt = ShardedBlocker::from_parts(
            sharded.shard_config(),
            sharded.shards().to_vec(),
            sharded.members().to_vec(),
            sharded.len(),
        )
        .unwrap();
        assert_eq!(rebuilt, sharded);

        // Members failing to partition 0..n are rejected.
        let mut bad_members = sharded.members().to_vec();
        bad_members[0].pop();
        assert!(ShardedBlocker::from_parts(
            sharded.shard_config(),
            sharded.shards().to_vec(),
            bad_members,
            sharded.len(),
        )
        .is_err());
        // Shard-count mismatch is rejected.
        assert!(ShardedBlocker::from_parts(
            ShardConfig::of(2),
            sharded.shards().to_vec(),
            sharded.members().to_vec(),
            sharded.len(),
        )
        .is_err());
    }
}
