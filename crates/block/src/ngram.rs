//! The character q-gram overlap blocker of §5.1, in two shapes: the batch
//! [`NGramBlocker`] over a whole dataset and the incremental [`NGramIndex`]
//! the serving tier keeps resident.
//!
//! The paper builds AmazonMI's candidate set with a standard blocker
//! "preserving record pairs that share at least a 4-gram" and uses a second
//! blocking pass to harvest WDC's cross-category pairs. Both shapes here
//! are inverted indexes from character q-grams of the lower-cased title to
//! record ids; buckets larger than `max_bucket` are treated as stop-grams
//! and skipped, and that suppression is *accounted for* in the
//! [`BlockingReport`] instead of happening silently.
//!
//! Shared-gram counts (`min_shared`) are taken over the **kept** (uncapped)
//! grams in both shapes, so the batch blocker and the incremental index
//! agree exactly on which pairs survive a given corpus state.

use crate::{BlockingOutcome, CandidateGenerator};
use flexer_types::{BlockingReport, CandidateSet, Dataset, NGramBlockerConfig, PairRef, RecordId};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// Reusable buffers for the hot incremental query path. Candidate queries
/// run once per ingest and once per record resolve; without reuse each
/// query allocates a lowercase `String`, a char buffer, a gram set and a
/// shared-count map — measurable churn at small corpus sizes, where the
/// per-query constant competes with the scoring work blocking saves.
#[derive(Debug, Default)]
struct QueryScratch {
    chars: Vec<char>,
    grams: Vec<u64>,
    shared: HashMap<u32, u32>,
}

thread_local! {
    static QUERY_SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::default());
}

/// Character q-gram overlap blocker (batch shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NGramBlocker {
    /// Gram length (the paper uses 4).
    pub q: usize,
    /// Minimum number of shared (kept) grams for a pair to survive.
    pub min_shared: usize,
    /// Inverted-index buckets larger than this are skipped as stop-grams.
    pub max_bucket: usize,
}

impl Default for NGramBlocker {
    fn default() -> Self {
        Self::from_config(NGramBlockerConfig::default())
    }
}

impl NGramBlocker {
    /// Blocker with gram size `q`, keeping pairs sharing at least one gram,
    /// with the default stop-gram bucket cap.
    pub fn new(q: usize) -> Self {
        Self { q, ..Self::default() }
    }

    /// Blocker from a shared config.
    pub fn from_config(config: NGramBlockerConfig) -> Self {
        Self { q: config.q, min_shared: config.min_shared, max_bucket: config.max_bucket }
    }

    /// The config this blocker runs.
    pub fn config(&self) -> NGramBlockerConfig {
        NGramBlockerConfig { q: self.q, min_shared: self.min_shared, max_bucket: self.max_bucket }
    }

    /// Sets the stop-gram bucket cap.
    pub fn with_max_bucket(mut self, max_bucket: usize) -> Self {
        self.max_bucket = max_bucket;
        self
    }

    /// The set of hashed q-grams of a title (lower-cased).
    pub fn gram_set(&self, title: &str) -> HashSet<u64> {
        gram_set(title, self.q)
    }

    /// Whether two titles share at least `min_shared` q-grams. This is the
    /// pairwise predicate (no bucket cap — caps are a corpus-level
    /// stop-gram notion).
    pub fn survives(&self, a: &str, b: &str) -> bool {
        let ga = self.gram_set(a);
        let gb = self.gram_set(b);
        let (small, large) = if ga.len() <= gb.len() { (&ga, &gb) } else { (&gb, &ga) };
        small.iter().filter(|g| large.contains(g)).count() >= self.min_shared
    }

    /// Blocks a whole dataset: every record pair sharing at least
    /// `min_shared` kept q-grams, plus the report of what the bucket cap
    /// suppressed.
    pub fn block(&self, dataset: &Dataset) -> BlockingOutcome {
        let mut index = NGramIndex::new(self.config());
        for record in dataset.iter() {
            index.insert(record.title());
        }
        index.block_all()
    }

    /// Blocks across two record-id groups only (the WDC cross-category
    /// expansion): returns pairs with one record in `left` and one in
    /// `right` that share at least `min_shared` q-grams.
    pub fn block_across(
        &self,
        dataset: &Dataset,
        left: &[RecordId],
        right: &[RecordId],
    ) -> Vec<PairRef> {
        let right_sets: Vec<(RecordId, HashSet<u64>)> =
            right.iter().map(|&r| (r, self.gram_set(dataset[r].title()))).collect();
        let mut out = Vec::new();
        for &l in left {
            let gl = self.gram_set(dataset[l].title());
            for (r, gr) in &right_sets {
                if *r == l {
                    continue;
                }
                let shared = gl.intersection(gr).count();
                if shared >= self.min_shared {
                    out.push(PairRef::new(l, *r).expect("l != r"));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl CandidateGenerator for NGramBlocker {
    fn name(&self) -> &'static str {
        "ngram"
    }

    fn generate(&self, dataset: &Dataset) -> BlockingOutcome {
        self.block(dataset)
    }
}

/// Incremental q-gram inverted index: the serving tier's resident blocker.
///
/// Record ids are assigned sequentially by [`NGramIndex::insert`], so
/// bucket id lists are ascending by construction — which makes the
/// serialized form canonical (buckets sorted by gram hash, ids sorted
/// within) and truncation back to a watermark exact.
///
/// Candidate queries are order-insensitive-deterministic: the candidate
/// *record set* for a title depends only on the set of records indexed,
/// never on their insertion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NGramIndex {
    config: NGramBlockerConfig,
    buckets: HashMap<u64, Vec<u32>>,
    n_records: usize,
}

impl NGramIndex {
    /// Empty index.
    pub fn new(config: NGramBlockerConfig) -> Self {
        assert!(config.q > 0, "gram length must be positive");
        assert!(config.min_shared > 0, "min_shared must be positive");
        Self { config, buckets: HashMap::new(), n_records: 0 }
    }

    /// The config this index runs.
    pub fn config(&self) -> NGramBlockerConfig {
        self.config
    }

    /// Number of records indexed.
    pub fn len(&self) -> usize {
        self.n_records
    }

    /// Whether no records are indexed.
    pub fn is_empty(&self) -> bool {
        self.n_records == 0
    }

    /// Number of distinct grams indexed.
    pub fn n_grams(&self) -> usize {
        self.buckets.len()
    }

    /// Indexes one record title; returns its id (sequential).
    pub fn insert(&mut self, title: &str) -> RecordId {
        let id = self.n_records;
        let id32 = u32::try_from(id).expect("record ids fit in u32");
        for g in gram_set(title, self.config.q) {
            self.buckets.entry(g).or_default().push(id32);
        }
        self.n_records += 1;
        id
    }

    /// Candidate record ids for a new title: every indexed record sharing
    /// at least `min_shared` kept grams with it, ascending. Grams whose
    /// bucket currently exceeds `max_bucket` are stop-grams and do not
    /// count. Runs on thread-local scratch buffers, so the hot ingest /
    /// record-resolve path allocates only the returned vector.
    pub fn candidates(&self, title: &str) -> Vec<RecordId> {
        // Explicit dotted path, not a nested span guard: candidate queries
        // run from arbitrary caller contexts (serial ingest, parallel
        // shard fan-out workers) and must aggregate under one stable path.
        let rec = flexer_obs::global();
        let t0 = rec.is_enabled().then(std::time::Instant::now);
        let mut skipped = 0u64;
        let out = QUERY_SCRATCH.with(|cell| {
            let QueryScratch { chars, grams, shared } = &mut *cell.borrow_mut();
            gram_vec_into(title, self.config.q, chars, grams);
            self.collect_candidates(grams, true, shared, &mut skipped)
        });
        if let Some(t0) = t0 {
            rec.record_span_ns("block.ngram.query", t0.elapsed().as_nanos() as u64);
            rec.add("block.ngram.candidates", out.len() as u64);
            if skipped > 0 {
                rec.add("block.ngram.stop_grams_skipped", skipped);
            }
        }
        out
    }

    /// Candidate record ids among an explicit, pre-filtered gram list —
    /// the sharded query path: the caller has already made the stop-gram
    /// decision against *global* bucket sizes, so no per-shard cap is
    /// applied here (a shard-local cap would disagree with the unsharded
    /// blocker and break bit-identity).
    pub fn candidates_for_grams(&self, grams: &[u64]) -> Vec<RecordId> {
        QUERY_SCRATCH.with(|cell| {
            let QueryScratch { shared, .. } = &mut *cell.borrow_mut();
            let mut skipped = 0u64;
            self.collect_candidates(grams, false, shared, &mut skipped)
        })
    }

    /// Shared-count accumulation over `grams`, into a reused map;
    /// candidates are emitted ascending into a pre-sized vector. Grams
    /// suppressed by the bucket cap are tallied into `skipped`.
    fn collect_candidates(
        &self,
        grams: &[u64],
        apply_cap: bool,
        shared: &mut HashMap<u32, u32>,
        skipped: &mut u64,
    ) -> Vec<RecordId> {
        shared.clear();
        for g in grams {
            if let Some(bucket) = self.buckets.get(g) {
                if apply_cap && bucket.len() > self.config.max_bucket {
                    *skipped += 1;
                    continue;
                }
                for &id in bucket {
                    *shared.entry(id).or_insert(0) += 1;
                }
            }
        }
        let min = self.config.min_shared as u32;
        let mut out: Vec<RecordId> = Vec::with_capacity(shared.len());
        out.extend(shared.iter().filter(|&(_, &c)| c >= min).map(|(&id, _)| id as RecordId));
        out.sort_unstable();
        out
    }

    /// Blocks the indexed corpus into every surviving pair plus the
    /// suppression report — the batch path ([`NGramBlocker::block`]) is
    /// this, run over a freshly built index.
    pub fn block_all(&self) -> BlockingOutcome {
        let mut report = BlockingReport { grams_indexed: self.buckets.len(), ..Default::default() };
        let mut shared: HashMap<(u32, u32), usize> = HashMap::new();
        for bucket in self.buckets.values() {
            let enumerated = (bucket.len() * bucket.len().saturating_sub(1) / 2) as u64;
            if bucket.len() > self.config.max_bucket {
                report.grams_skipped += 1;
                report.comparisons_suppressed += enumerated;
                continue;
            }
            report.comparisons_considered += enumerated;
            for i in 0..bucket.len() {
                for j in i + 1..bucket.len() {
                    let (a, b) = (bucket[i].min(bucket[j]), bucket[i].max(bucket[j]));
                    *shared.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
        let mut pairs: Vec<PairRef> = shared
            .into_iter()
            .filter(|&(_, count)| count >= self.config.min_shared)
            .map(|((a, b), _)| PairRef::new(a as RecordId, b as RecordId).expect("a < b"))
            .collect();
        pairs.sort_unstable();
        report.candidates = pairs.len();
        BlockingOutcome { candidates: CandidateSet::from_pairs(pairs), report }
    }

    /// A copy truncated back to the first `n_records` records.
    pub fn truncated(&self, n_records: usize) -> Self {
        let limit = u32::try_from(n_records).expect("record ids fit in u32");
        let buckets: HashMap<u64, Vec<u32>> = self
            .buckets
            .iter()
            .filter_map(|(&g, ids)| {
                let kept: Vec<u32> = ids.iter().copied().filter(|&id| id < limit).collect();
                (!kept.is_empty()).then_some((g, kept))
            })
            .collect();
        Self { config: self.config, buckets, n_records: n_records.min(self.n_records) }
    }

    /// Buckets sorted by gram hash (canonical order, for serialization).
    pub fn sorted_buckets(&self) -> Vec<(u64, &[u32])> {
        let mut out: Vec<(u64, &[u32])> =
            self.buckets.iter().map(|(&g, ids)| (g, ids.as_slice())).collect();
        out.sort_unstable_by_key(|&(g, _)| g);
        out
    }

    /// Reassembles an index from serialized parts, validating structure.
    pub fn from_parts(
        config: NGramBlockerConfig,
        n_records: usize,
        buckets: Vec<(u64, Vec<u32>)>,
    ) -> Result<Self, String> {
        if config.q == 0 || config.min_shared == 0 {
            return Err("q and min_shared must be positive".into());
        }
        let mut map = HashMap::with_capacity(buckets.len());
        for (g, ids) in buckets {
            if ids.is_empty() {
                return Err(format!("gram {g:#x} has an empty bucket"));
            }
            if !ids.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("gram {g:#x} bucket ids are not strictly ascending"));
            }
            if let Some(&last) = ids.last() {
                if last as usize >= n_records {
                    return Err(format!("gram {g:#x} references record {last} out of range"));
                }
            }
            if map.insert(g, ids).is_some() {
                return Err(format!("gram {g:#x} appears twice"));
            }
        }
        Ok(Self { config, buckets: map, n_records })
    }
}

/// The sorted, deduplicated hashed q-grams of a title — the same gram set
/// as [`gram_set`], as a vector (the shape the sharded query path passes
/// to [`NGramIndex::candidates_for_grams`]).
pub fn gram_vec(title: &str, q: usize) -> Vec<u64> {
    let mut chars = Vec::new();
    let mut grams = Vec::new();
    gram_vec_into(title, q, &mut chars, &mut grams);
    grams
}

/// [`gram_vec`] into caller-owned buffers (both are cleared first) — the
/// allocation-free shape the thread-local query scratch uses.
fn gram_vec_into(title: &str, q: usize, chars: &mut Vec<char>, grams: &mut Vec<u64>) {
    chars.clear();
    chars.extend(title.chars().flat_map(char::to_lowercase));
    grams.clear();
    if chars.is_empty() {
        return;
    }
    if chars.len() < q {
        grams.push(hash_gram(chars));
        return;
    }
    grams.extend(chars.windows(q).map(hash_gram));
    grams.sort_unstable();
    grams.dedup();
}

/// The set of hashed q-grams of a title (lower-cased per character, the
/// same mapping the scratch-based query path applies — the two must agree
/// gram-for-gram or incremental candidates would diverge from batch
/// blocking). Titles shorter than `q` hash as one whole-string gram; empty
/// titles have no grams.
pub fn gram_set(title: &str, q: usize) -> HashSet<u64> {
    gram_vec(title, q).into_iter().collect()
}

/// FNV-1a over the gram's chars — fast, deterministic, no dependencies.
pub(crate) fn hash_gram(chars: &[char]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &c in chars {
        h ^= c as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_types::Record;

    fn dataset(titles: &[&str]) -> Dataset {
        Dataset::from_records(titles.iter().map(|t| Record::with_title(0, *t)).collect())
    }

    #[test]
    fn duplicates_share_grams() {
        let b = NGramBlocker::default();
        assert!(b.survives(
            "Nike Men's Lunar Force 1 Duckboot",
            "NIKE Men Lunar Force 1 Duckboot, Black"
        ));
    }

    #[test]
    fn unrelated_titles_do_not_survive() {
        let b = NGramBlocker::default();
        assert!(!b.survives("zzzz qqqq", "aaaa bbbb"));
    }

    #[test]
    fn case_insensitive() {
        let b = NGramBlocker::default();
        assert!(b.survives("DUCKBOOT", "duckboot"));
    }

    #[test]
    fn block_emits_only_sharing_pairs() {
        let d = dataset(&[
            "Nike Lunar Force Duckboot",
            "nike lunar force duckboot black",
            "Completely unrelated xyzw",
        ]);
        let b = NGramBlocker::default().with_max_bucket(100);
        let out = b.block(&d);
        assert!(out.candidates.iter().any(|(_, p)| (p.a, p.b) == (0, 1)));
        for (_, p) in out.candidates.iter() {
            assert!(b.survives(d[p.a].title(), d[p.b].title()));
        }
        assert_eq!(out.report.candidates, out.candidates.len());
        assert!(out.report.grams_indexed > 0);
    }

    #[test]
    fn min_shared_tightens() {
        let d = dataset(&["abcdef", "abczzz", "abcdxx"]);
        let loose = NGramBlocker { q: 4, min_shared: 1, max_bucket: 100 }.block(&d);
        let tight = NGramBlocker { q: 4, min_shared: 2, max_bucket: 100 }.block(&d);
        assert!(tight.candidates.len() <= loose.candidates.len());
    }

    #[test]
    fn short_titles_hash_whole_string() {
        let b = NGramBlocker::default();
        assert!(b.survives("abc", "abc"));
        assert!(!b.survives("abc", "abd"));
        assert!(b.gram_set("").is_empty());
    }

    #[test]
    fn bucket_cap_prunes_stop_grams_and_reports_it() {
        // All titles share " the " grams; capping buckets at 2 removes them.
        let d = dataset(&["alpha the one", "beta the two", "gamma the three", "delta the four"]);
        let b = NGramBlocker::default();
        let capped = b.with_max_bucket(2).block(&d);
        let uncapped = b.with_max_bucket(100).block(&d);
        assert!(capped.candidates.len() <= uncapped.candidates.len());
        assert!(capped.report.grams_skipped > 0, "the cap must be visible in the report");
        assert!(capped.report.comparisons_suppressed > 0);
        assert_eq!(uncapped.report.grams_skipped, 0);
        assert_eq!(uncapped.report.comparisons_suppressed, 0);
    }

    #[test]
    fn block_across_respects_groups() {
        let d = dataset(&["canon camera body", "canon camera grip", "nikon watch strap"]);
        let b = NGramBlocker::default();
        let pairs = b.block_across(&d, &[0, 1], &[2]);
        for p in &pairs {
            assert!(p.b == 2 || p.a == 2);
        }
        // within-left pairs are absent even though 0 and 1 share grams
        assert!(!pairs.iter().any(|p| (p.a, p.b) == (0, 1)));
    }

    #[test]
    fn blocked_pairs_are_sorted_and_unique() {
        let d = dataset(&["aaaa bbbb", "aaaa cccc", "aaaa dddd"]);
        let out = NGramBlocker::default().block(&d);
        let pairs = out.candidates.pairs();
        for w in pairs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn incremental_candidates_match_batch_blocking() {
        let titles =
            ["nike lunar force", "nike lunar force black", "adidas superstar", "nike air max"];
        let blocker = NGramBlocker::default();
        let batch = blocker.block(&dataset(&titles));
        let mut index = NGramIndex::new(blocker.config());
        for t in &titles {
            index.insert(t);
        }
        // Pair (a, b) is in the batch output iff b is an incremental
        // candidate of a's title (excluding a itself).
        for (a, title) in titles.iter().enumerate() {
            let cands = index.candidates(title);
            for b in 0..titles.len() {
                if a == b {
                    continue;
                }
                let pair = PairRef::new(a, b).unwrap();
                let blocked = batch.candidates.iter().any(|(_, p)| p == pair);
                assert_eq!(blocked, cands.contains(&b), "pair ({a}, {b})");
            }
        }
        assert_eq!(index.block_all().candidates, batch.candidates);
    }

    #[test]
    fn incremental_is_order_insensitive() {
        let titles = ["nike lunar force", "adidas superstar mesh", "nike air max", "lunar max"];
        let config = NGramBlockerConfig::default();
        let mut forward = NGramIndex::new(config);
        for t in &titles {
            forward.insert(t);
        }
        let reversed: Vec<&str> = titles.iter().rev().copied().collect();
        let mut backward = NGramIndex::new(config);
        for t in &reversed {
            backward.insert(t);
        }
        for query in ["nike lunar", "adidas mesh", "completely unrelated zzzz"] {
            let f: HashSet<&str> =
                forward.candidates(query).into_iter().map(|id| titles[id]).collect();
            let b: HashSet<&str> =
                backward.candidates(query).into_iter().map(|id| reversed[id]).collect();
            assert_eq!(f, b, "candidate record set must not depend on insertion order");
        }
    }

    #[test]
    fn truncation_is_exact_inverse_of_inserts() {
        let config = NGramBlockerConfig::default();
        let mut index = NGramIndex::new(config);
        index.insert("nike lunar force");
        index.insert("adidas superstar");
        let watermark = index.clone();
        index.insert("nike air max");
        index.insert("reebok classic");
        assert_eq!(index.truncated(2), watermark);
        assert_eq!(index.truncated(10), index);
    }

    #[test]
    fn gram_vec_agrees_with_gram_set() {
        for title in ["Nike Lunar Force 1", "ab", "", "ΣΊΣΥΦΟΣ loop", "aaaaaaa"] {
            let v = gram_vec(title, 4);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            let s: HashSet<u64> = v.iter().copied().collect();
            assert_eq!(s, gram_set(title, 4), "{title:?}");
        }
    }

    #[test]
    fn candidates_for_grams_skips_the_cap() {
        // Four titles sharing " the " grams; cap of 2 suppresses them in
        // the capped query but an explicit gram list bypasses the cap.
        let config = NGramBlockerConfig { q: 4, min_shared: 1, max_bucket: 2 };
        let mut index = NGramIndex::new(config);
        for t in ["alpha the one", "beta the two", "gamma the three", "delta the four"] {
            index.insert(t);
        }
        let capped = index.candidates("echo the five");
        let uncapped = index.candidates_for_grams(&gram_vec("echo the five", 4));
        assert!(capped.len() < uncapped.len(), "{capped:?} vs {uncapped:?}");
        assert_eq!(uncapped, vec![0, 1, 2, 3]);
        // With no oversized buckets the two paths agree exactly.
        let loose = NGramIndex::new(NGramBlockerConfig::default());
        let mut loose = loose;
        loose.insert("alpha the one");
        loose.insert("zzzz qqqq");
        assert_eq!(
            loose.candidates("alpha the one"),
            loose.candidates_for_grams(&gram_vec("alpha the one", 4))
        );
    }

    #[test]
    fn from_parts_validates() {
        let config = NGramBlockerConfig::default();
        assert!(NGramIndex::from_parts(config, 2, vec![(7, vec![0, 1])]).is_ok());
        assert!(NGramIndex::from_parts(config, 2, vec![(7, vec![])]).is_err());
        assert!(NGramIndex::from_parts(config, 2, vec![(7, vec![1, 0])]).is_err());
        assert!(NGramIndex::from_parts(config, 2, vec![(7, vec![0, 2])]).is_err());
        assert!(NGramIndex::from_parts(config, 2, vec![(7, vec![0]), (7, vec![1])]).is_err());
    }

    #[test]
    fn sorted_buckets_roundtrip_through_from_parts() {
        let mut index = NGramIndex::new(NGramBlockerConfig::default());
        index.insert("nike lunar force duckboot");
        index.insert("adidas superstar");
        index.insert("nike air max");
        let parts: Vec<(u64, Vec<u32>)> =
            index.sorted_buckets().into_iter().map(|(g, ids)| (g, ids.to_vec())).collect();
        let rebuilt = NGramIndex::from_parts(index.config(), index.len(), parts).unwrap();
        assert_eq!(rebuilt, index);
    }
}
