//! # flexer-block
//!
//! The candidate-generation subsystem: every layer of the workspace that
//! needs candidate record pairs — benchmark generation (`flexer-datasets`),
//! the batch pipeline (`flexer-core`), the online service (`flexer-serve`)
//! and the snapshot store (`flexer-store`) — obtains them through this
//! crate instead of enumerating all pairs.
//!
//! Two shapes of API:
//!
//! * **Batch**: the [`CandidateGenerator`] trait blocks a whole [`Dataset`]
//!   into a [`CandidateSet`] plus a [`BlockingReport`] accounting for what
//!   the pass pruned. Backends: [`NGramBlocker`] (the paper's §5.1 q-gram
//!   overlap blocker, inverted-index based), [`AnnBlocker`] (record-level
//!   k-NN over feature-hashed titles, built on `flexer-ann`), and
//!   [`ExhaustivePairs`] (all pairs — the parity baseline).
//! * **Incremental**: [`BlockerState`] is the serving-tier resident index.
//!   It answers "which existing records could this new title match?" in
//!   O(candidates) and grows by [`BlockerState::insert`]. The q-gram
//!   backend is order-insensitive-deterministic: the candidate *record
//!   set* returned for a query depends only on the set of records
//!   inserted, never on their insertion order. The ANN backend shares
//!   that guarantee except for exact distance ties at the k-NN boundary,
//!   which fall back to insertion-id order (see [`ann`]).
//!
//! Blocking never changes scores: downstream scoring is per-pair, so a
//! blocked pair scores bit-identically to the same pair under exhaustive
//! generation — blocking only decides *which* pairs are scored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ann;
pub mod ngram;
pub mod shard;

pub use ann::{AnnBlocker, AnnRecordIndex};
pub use ngram::{NGramBlocker, NGramIndex};
pub use shard::{local_answer, merge_candidates, plan_query, ShardedBlocker};

use flexer_types::{
    BlockingReport, CandidateGenConfig, CandidateSet, Dataset, EntityMap, PairRef, RecordId,
};

/// A blocked candidate set together with the accounting of the pass that
/// produced it.
#[derive(Debug, Clone)]
pub struct BlockingOutcome {
    /// The surviving candidate pairs, sorted and deduplicated.
    pub candidates: CandidateSet,
    /// What the pass considered and what it pruned.
    pub report: BlockingReport,
}

impl BlockingOutcome {
    /// Measures golden-pair recall against a ground-truth entity map and
    /// records it in the report (see [`golden_pair_recall`]).
    pub fn with_golden_recall(mut self, entities: &EntityMap) -> Self {
        let (recalled, total) = golden_pair_recall(&self.candidates, entities);
        self.report.golden_recalled = recalled;
        self.report.golden_total = total;
        let rec = flexer_obs::global();
        if rec.is_enabled() {
            rec.set_gauge("block.golden.total", total as f64);
            rec.set_gauge("block.golden.recalled", recalled as f64);
            rec.set_gauge("block.golden.recall", self.report.golden_recall().unwrap_or(0.0));
        }
        self
    }
}

/// Counts how many golden pairs — distinct record pairs mapped to the same
/// entity by `entities` — survive in `candidates`. Returns
/// `(recalled, total)`; `total` is the number of golden pairs in the
/// ground truth. This is the blocking-recall instrumentation the ROADMAP
/// calls for: bucket caps and shard layouts are judged by how much golden
/// signal they let through, measured rather than guessed.
pub fn golden_pair_recall(candidates: &CandidateSet, entities: &EntityMap) -> (usize, usize) {
    let mut by_entity: std::collections::HashMap<u64, Vec<RecordId>> =
        std::collections::HashMap::new();
    for r in 0..entities.len() {
        let e = entities.entity_of(r).expect("record ids 0..len are mapped");
        by_entity.entry(e).or_default().push(r);
    }
    let mut pairs: Vec<PairRef> = candidates.pairs().to_vec();
    pairs.sort_unstable();
    let (mut recalled, mut total) = (0usize, 0usize);
    for group in by_entity.values() {
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                total += 1;
                let pair = PairRef::new(a, b).expect("a < b");
                if pairs.binary_search(&pair).is_ok() {
                    recalled += 1;
                }
            }
        }
    }
    (recalled, total)
}

/// A batch candidate-pair generator over a whole dataset.
///
/// Implementations must be deterministic (same dataset ⇒ same outcome) and
/// must emit normalized (`a < b`), deduplicated pairs in sorted order.
pub trait CandidateGenerator {
    /// Short backend name for logs and bench output.
    fn name(&self) -> &'static str;
    /// Blocks the dataset into a candidate set plus a report.
    fn generate(&self, dataset: &Dataset) -> BlockingOutcome;
}

/// The all-pairs "blocker": every distinct record pair survives. Quadratic
/// — exists as the parity/recall baseline, not for production corpora.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustivePairs;

impl CandidateGenerator for ExhaustivePairs {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn generate(&self, dataset: &Dataset) -> BlockingOutcome {
        let n = dataset.len();
        let mut pairs = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)) / 2);
        for a in 0..n {
            for b in a + 1..n {
                pairs.push(PairRef::new(a, b).expect("a < b"));
            }
        }
        let report = BlockingReport {
            comparisons_considered: pairs.len() as u64,
            candidates: pairs.len(),
            ..Default::default()
        };
        BlockingOutcome { candidates: CandidateSet::from_pairs(pairs), report }
    }
}

/// Builds the batch generator a [`CandidateGenConfig`] names.
pub fn generator_for(config: &CandidateGenConfig) -> Box<dyn CandidateGenerator> {
    match config {
        CandidateGenConfig::Exhaustive => Box::new(ExhaustivePairs),
        CandidateGenConfig::NGram(c) => Box::new(NGramBlocker::from_config(*c)),
        CandidateGenConfig::Ann(c) => Box::new(AnnBlocker::new(*c)),
    }
}

/// The serving tier's resident candidate-generation state: an incremental
/// index over the record corpus that answers candidate queries for new
/// titles and grows one record at a time.
///
/// `Exhaustive` carries no state and means "every record is a candidate" —
/// the explicit fallback for parity testing against blocked serving.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockerState {
    /// No blocking: every stored record is a candidate for every query.
    Exhaustive,
    /// Incremental q-gram inverted index.
    NGram(NGramIndex),
    /// Incremental record-level ANN index over feature-hashed titles.
    Ann(AnnRecordIndex),
}

impl BlockerState {
    /// Builds the state a config names, indexing `titles` in id order.
    pub fn build<'a>(
        config: &CandidateGenConfig,
        titles: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        match config {
            CandidateGenConfig::Exhaustive => BlockerState::Exhaustive,
            CandidateGenConfig::NGram(c) => {
                let mut index = NGramIndex::new(*c);
                for t in titles {
                    index.insert(t);
                }
                BlockerState::NGram(index)
            }
            CandidateGenConfig::Ann(c) => {
                let mut index = AnnRecordIndex::new(*c);
                for t in titles {
                    index.insert(t);
                }
                BlockerState::Ann(index)
            }
        }
    }

    /// Indexes one more record title; ids are assigned sequentially, so
    /// callers must insert in record-id order.
    pub fn insert(&mut self, title: &str) {
        match self {
            BlockerState::Exhaustive => {}
            BlockerState::NGram(ix) => {
                ix.insert(title);
            }
            BlockerState::Ann(ix) => {
                ix.insert(title);
            }
        }
    }

    /// Candidate record ids for a new title against the current corpus,
    /// ascending. `None` means "all records" (the exhaustive state tracks
    /// no corpus size of its own).
    pub fn candidates(&self, title: &str) -> Option<Vec<RecordId>> {
        match self {
            BlockerState::Exhaustive => None,
            BlockerState::NGram(ix) => Some(ix.candidates(title)),
            BlockerState::Ann(ix) => Some(ix.candidates(title)),
        }
    }

    /// A copy truncated back to the first `n_records` records — the inverse
    /// of the inserts past that watermark. Used by the serving tier to
    /// reconstruct the training-time snapshot byte-identically.
    pub fn truncated(&self, n_records: usize) -> Self {
        match self {
            BlockerState::Exhaustive => BlockerState::Exhaustive,
            BlockerState::NGram(ix) => BlockerState::NGram(ix.truncated(n_records)),
            BlockerState::Ann(ix) => BlockerState::Ann(ix.truncated(n_records)),
        }
    }

    /// Number of records indexed (0 for the stateless exhaustive variant).
    pub fn len(&self) -> usize {
        match self {
            BlockerState::Exhaustive => 0,
            BlockerState::NGram(ix) => ix.len(),
            BlockerState::Ann(ix) => ix.len(),
        }
    }

    /// Whether no records are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short backend name for logs and bench output.
    pub fn kind_name(&self) -> &'static str {
        match self {
            BlockerState::Exhaustive => "exhaustive",
            BlockerState::NGram(_) => "ngram",
            BlockerState::Ann(_) => "ann",
        }
    }

    /// The candidate-generation config this state runs — the inverse of
    /// [`BlockerState::build`], so a state can be re-partitioned (or
    /// re-built) without out-of-band configuration.
    pub fn gen_config(&self) -> CandidateGenConfig {
        match self {
            BlockerState::Exhaustive => CandidateGenConfig::Exhaustive,
            BlockerState::NGram(ix) => CandidateGenConfig::NGram(ix.config()),
            BlockerState::Ann(ix) => CandidateGenConfig::Ann(ix.config()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_types::{NGramBlockerConfig, Record};

    fn dataset(titles: &[&str]) -> Dataset {
        Dataset::from_records(titles.iter().map(|t| Record::with_title(0, *t)).collect())
    }

    #[test]
    fn exhaustive_emits_every_pair() {
        let d = dataset(&["a", "b", "c", "d"]);
        let out = ExhaustivePairs.generate(&d);
        assert_eq!(out.candidates.len(), 6);
        assert_eq!(out.report.candidates, 6);
        assert_eq!(out.report.comparisons_considered, 6);
    }

    #[test]
    fn generator_for_matches_config() {
        assert_eq!(generator_for(&CandidateGenConfig::Exhaustive).name(), "exhaustive");
        assert_eq!(generator_for(&CandidateGenConfig::default()).name(), "ngram");
        assert_eq!(
            generator_for(&CandidateGenConfig::Ann(flexer_types::AnnBlockerConfig::default()))
                .name(),
            "ann"
        );
    }

    #[test]
    fn state_build_insert_candidates_roundtrip() {
        let config = CandidateGenConfig::NGram(NGramBlockerConfig::default());
        let titles = ["nike lunar force duckboot", "nike lunar force one", "zzzz qqqq xxxx"];
        let mut state = BlockerState::build(&config, titles.iter().copied());
        assert_eq!(state.len(), 3);
        let c = state.candidates("nike lunar sneaker").unwrap();
        assert_eq!(c, vec![0, 1]);
        state.insert("nike lunar extra");
        assert_eq!(state.len(), 4);
        assert_eq!(state.candidates("nike lunar sneaker").unwrap(), vec![0, 1, 3]);
        // Truncation undoes the insert exactly.
        let back = state.truncated(3);
        assert_eq!(back, BlockerState::build(&config, titles.iter().copied()));
    }

    #[test]
    fn exhaustive_state_is_stateless() {
        let mut state = BlockerState::build(&CandidateGenConfig::Exhaustive, ["a", "b"]);
        assert_eq!(state.candidates("anything"), None);
        state.insert("c");
        assert!(state.is_empty());
        assert_eq!(state.truncated(0), BlockerState::Exhaustive);
    }
}
