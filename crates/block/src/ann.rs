//! Record-level ANN blocking: titles are feature-hashed into fixed-dim
//! gram-count vectors and each record is paired with its `k` nearest
//! neighbours under L2, via `flexer-ann`.
//!
//! This is the "Faiss offers multiple heuristics" direction of §5.7 applied
//! to *candidate generation* rather than graph wiring: where the q-gram
//! blocker keys on exact gram overlap, the ANN blocker ranks by whole-title
//! gram-profile distance, so it degrades gracefully on heavy title noise
//! (a pair can survive without sharing a single intact gram).
//!
//! Determinism: embeddings are pure functions of the title, and
//! [`FlatIndex`] search breaks distance ties by ascending id — so batch
//! blocking is deterministic for a given dataset. For the incremental
//! index, exact distance ties at the k boundary are resolved by insertion
//! id; corpora without such ties are fully order-insensitive.

use crate::{BlockingOutcome, CandidateGenerator};
use flexer_ann::{FlatIndex, Neighbor, VectorIndex};
use flexer_types::{AnnBlockerConfig, BlockingReport, CandidateSet, Dataset, PairRef, RecordId};

/// The hashed gram-count embedding of a title under an ANN blocker config —
/// a pure function of the title text, shared by every index built from the
/// same config (the sharded query path embeds once and searches N shards).
pub fn embed_title(title: &str, config: &AnnBlockerConfig) -> Vec<f32> {
    let mut v = vec![0.0f32; config.dim];
    // gram_vec, not gram_set: same deduplicated grams without building a
    // HashSet just to iterate it once (this runs per ingest and per query).
    for g in crate::ngram::gram_vec(title, config.q) {
        v[(g % config.dim as u64) as usize] += 1.0;
    }
    v
}

/// Batch record-level ANN blocker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnBlocker {
    config: AnnBlockerConfig,
}

impl AnnBlocker {
    /// Blocker from a shared config.
    pub fn new(config: AnnBlockerConfig) -> Self {
        assert!(config.q > 0, "gram length must be positive");
        assert!(config.dim > 0, "embedding dimension must be positive");
        assert!(config.k > 0, "neighbour count must be positive");
        Self { config }
    }

    /// The config this blocker runs.
    pub fn config(&self) -> AnnBlockerConfig {
        self.config
    }
}

impl CandidateGenerator for AnnBlocker {
    fn name(&self) -> &'static str {
        "ann"
    }

    fn generate(&self, dataset: &Dataset) -> BlockingOutcome {
        let mut index = AnnRecordIndex::new(self.config);
        for record in dataset.iter() {
            index.insert(record.title());
        }
        let k = self.config.k;
        let queries: Vec<&[f32]> = (0..dataset.len()).map(|r| index.index.vector(r)).collect();
        // k + 1 because each record's nearest hit is (usually) itself.
        let hits = index.index.search_batch(&queries, k + 1);
        let mut pairs = Vec::with_capacity(dataset.len() * k);
        let mut considered = 0u64;
        for (r, neighbors) in hits.iter().enumerate() {
            considered += neighbors.len() as u64;
            for h in neighbors.iter().filter(|h| h.id != r).take(k) {
                pairs.push(PairRef::new(r, h.id).expect("r != id"));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let report = BlockingReport {
            comparisons_considered: considered,
            candidates: pairs.len(),
            ..Default::default()
        };
        BlockingOutcome { candidates: CandidateSet::from_pairs(pairs), report }
    }
}

/// Incremental record-level ANN index (the serving-tier shape).
#[derive(Debug, Clone)]
pub struct AnnRecordIndex {
    config: AnnBlockerConfig,
    index: FlatIndex,
}

impl AnnRecordIndex {
    /// Empty index.
    pub fn new(config: AnnBlockerConfig) -> Self {
        assert!(config.q > 0, "gram length must be positive");
        assert!(config.dim > 0, "embedding dimension must be positive");
        assert!(config.k > 0, "neighbour count must be positive");
        Self { config, index: FlatIndex::new(config.dim) }
    }

    /// The config this index runs.
    pub fn config(&self) -> AnnBlockerConfig {
        self.config
    }

    /// Number of records indexed.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no records are indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The hashed gram-count embedding of a title (a pure function of the
    /// title text).
    pub fn embed(&self, title: &str) -> Vec<f32> {
        embed_title(title, &self.config)
    }

    /// The `k` nearest hits for a pre-embedded query, ascending by
    /// distance, exact ties by ascending (insertion-order) id — the raw
    /// shape the sharded merge consumes: it re-sorts hits from every shard
    /// by `(distance, global id)`, which reproduces the unsharded ordering
    /// exactly because local insertion order is global insertion order
    /// restricted to the shard.
    pub fn nearest(&self, query: &[f32]) -> Vec<Neighbor> {
        self.index.search(query, self.config.k)
    }

    /// Indexes one record title; returns its id (sequential).
    pub fn insert(&mut self, title: &str) -> RecordId {
        let v = self.embed(title);
        self.index.add(&v)
    }

    /// The `k` nearest indexed records to a new title, ascending by id.
    pub fn candidates(&self, title: &str) -> Vec<RecordId> {
        let rec = flexer_obs::global();
        let t0 = rec.is_enabled().then(std::time::Instant::now);
        let v = self.embed(title);
        let mut ids: Vec<RecordId> =
            self.index.search(&v, self.config.k).into_iter().map(|h| h.id).collect();
        ids.sort_unstable();
        if let Some(t0) = t0 {
            rec.record_span_ns("block.ann.query", t0.elapsed().as_nanos() as u64);
            rec.add("block.ann.candidates", ids.len() as u64);
        }
        ids
    }

    /// A copy truncated back to the first `n_records` records.
    pub fn truncated(&self, n_records: usize) -> Self {
        let n = n_records.min(self.len());
        let index =
            FlatIndex::from_rows(self.config.dim, &self.index.data()[..n * self.config.dim]);
        Self { config: self.config, index }
    }

    /// The raw `n × dim` embedding buffer (serialization).
    pub fn data(&self) -> &[f32] {
        self.index.data()
    }

    /// Reassembles an index from serialized parts.
    pub fn from_parts(config: AnnBlockerConfig, data: Vec<f32>) -> Result<Self, String> {
        if config.q == 0 || config.dim == 0 || config.k == 0 {
            return Err("q, dim and k must be positive".into());
        }
        if data.len() % config.dim != 0 {
            return Err(format!(
                "embedding buffer of {} floats is not a multiple of dim {}",
                data.len(),
                config.dim
            ));
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err("embedding buffer contains non-finite values".into());
        }
        Ok(Self { config, index: FlatIndex::from_rows(config.dim, &data) })
    }
}

impl PartialEq for AnnRecordIndex {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config && self.index.data() == other.index.data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_types::Record;

    fn dataset(titles: &[&str]) -> Dataset {
        Dataset::from_records(titles.iter().map(|t| Record::with_title(0, *t)).collect())
    }

    fn config() -> AnnBlockerConfig {
        AnnBlockerConfig { q: 3, dim: 32, k: 2 }
    }

    #[test]
    fn near_duplicates_are_nearest() {
        let titles = [
            "nike lunar force duckboot",
            "nike lunar force duckboot black",
            "philips sonicare toothbrush",
            "oral b electric toothbrush head",
        ];
        let out = AnnBlocker::new(config()).generate(&dataset(&titles));
        assert!(out.candidates.iter().any(|(_, p)| (p.a, p.b) == (0, 1)));
        assert_eq!(out.report.candidates, out.candidates.len());
    }

    #[test]
    fn batch_generation_is_deterministic() {
        let d = dataset(&["alpha beta", "beta gamma", "gamma delta", "delta epsilon"]);
        let blocker = AnnBlocker::new(config());
        assert_eq!(blocker.generate(&d).candidates, blocker.generate(&d).candidates);
    }

    #[test]
    fn incremental_candidates_bound_by_k() {
        let mut index = AnnRecordIndex::new(config());
        for t in ["aaa bbb", "bbb ccc", "ccc ddd", "ddd eee", "eee fff"] {
            index.insert(t);
        }
        let c = index.candidates("bbb ccc ddd");
        assert!(c.len() <= 2);
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn truncation_is_exact_inverse_of_inserts() {
        let mut index = AnnRecordIndex::new(config());
        index.insert("aaa bbb");
        index.insert("ccc ddd");
        let watermark = index.clone();
        index.insert("eee fff");
        assert_eq!(index.truncated(2), watermark);
    }

    #[test]
    fn from_parts_validates_and_roundtrips() {
        let mut index = AnnRecordIndex::new(config());
        index.insert("nike lunar");
        index.insert("adidas star");
        let rebuilt = AnnRecordIndex::from_parts(index.config(), index.data().to_vec()).unwrap();
        assert_eq!(rebuilt, index);
        assert!(AnnRecordIndex::from_parts(config(), vec![0.0; 33]).is_err());
        assert!(AnnRecordIndex::from_parts(config(), vec![f32::NAN; 32]).is_err());
    }

    #[test]
    fn empty_title_embeds_to_zero() {
        let index = AnnRecordIndex::new(config());
        assert!(index.embed("").iter().all(|&x| x == 0.0));
    }
}
