//! Property-based tests for the ANN substrate: the flat index must be
//! *exactly* brute force; IVF with full probing must equal flat; the k-NN
//! graph respects its structural contract.

use flexer_ann::knn_graph::knn_graph;
use flexer_ann::{l2_sq, FlatIndex, IvfConfig, IvfIndex, Neighbor, VectorIndex};
use proptest::prelude::*;

fn rows_strategy(n: usize, dim: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0f32..3.0, n * dim)
}

fn brute_force(rows: &[f32], dim: usize, query: &[f32], k: usize) -> Vec<Neighbor> {
    let n = rows.len() / dim;
    let mut all: Vec<Neighbor> = (0..n)
        .map(|id| Neighbor { id, dist: l2_sq(query, &rows[id * dim..(id + 1) * dim]) })
        .collect();
    all.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap().then(a.id.cmp(&b.id)));
    all.truncate(k);
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Flat search equals an independent brute-force scan, ids and order.
    #[test]
    fn flat_index_is_exact(rows in rows_strategy(40, 3), k in 1usize..8) {
        let dim = 3;
        let index = FlatIndex::from_rows(dim, &rows);
        let query = &rows[0..dim];
        let got = index.search(query, k);
        let want = brute_force(&rows, dim, query, k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.id, w.id);
            prop_assert!((g.dist - w.dist).abs() < 1e-5);
        }
    }

    /// Distances in a result list are non-decreasing and ≥ 0.
    #[test]
    fn results_sorted_and_nonnegative(rows in rows_strategy(25, 4), k in 1usize..10) {
        let index = FlatIndex::from_rows(4, &rows);
        let hits = index.search(&rows[4..8], k);
        for w in hits.windows(2) {
            prop_assert!(w[0].dist <= w[1].dist);
        }
        for h in &hits {
            prop_assert!(h.dist >= 0.0);
        }
    }

    /// IVF probing every list returns exactly the flat result.
    #[test]
    fn ivf_full_probe_equals_flat(rows in rows_strategy(30, 3), k in 1usize..6) {
        let dim = 3;
        let nlist = 5;
        let mut ivf = IvfIndex::build(dim, &rows, IvfConfig { nlist, ..Default::default() });
        ivf.set_nprobe(nlist);
        let flat = FlatIndex::from_rows(dim, &rows);
        let query = &rows[dim..2 * dim];
        let a: Vec<usize> = ivf.search(query, k).iter().map(|h| h.id).collect();
        let b: Vec<usize> = flat.search(query, k).iter().map(|h| h.id).collect();
        prop_assert_eq!(a, b);
    }

    /// The k-NN graph: no self-loops, correct out-degrees, and each
    /// neighbour list really is the k nearest others.
    #[test]
    fn knn_graph_contract(rows in rows_strategy(20, 2), k in 0usize..6) {
        let dim = 2;
        let index = FlatIndex::from_rows(dim, &rows);
        let graph = knn_graph(&index, k);
        let n = rows.len() / dim;
        prop_assert_eq!(graph.len(), n);
        for (i, nbrs) in graph.iter().enumerate() {
            prop_assert_eq!(nbrs.len(), k.min(n - 1));
            prop_assert!(!nbrs.contains(&i));
            // Every listed neighbour is at most as far as any unlisted one
            // (ties may go either way, so compare with epsilon).
            let my = &rows[i * dim..(i + 1) * dim];
            let worst_listed = nbrs
                .iter()
                .map(|&u| l2_sq(my, &rows[u * dim..(u + 1) * dim]))
                .fold(0.0f32, f32::max);
            for other in 0..n {
                if other == i || nbrs.contains(&other) {
                    continue;
                }
                let d = l2_sq(my, &rows[other * dim..(other + 1) * dim]);
                prop_assert!(d >= worst_listed - 1e-5,
                    "node {i}: unlisted {other} at {d} closer than listed at {worst_listed}");
            }
        }
    }

    /// Searching with k ≥ n returns all points exactly once.
    #[test]
    fn oversized_k_returns_everything(rows in rows_strategy(12, 2)) {
        let index = FlatIndex::from_rows(2, &rows);
        let hits = index.search(&[0.0, 0.0], 100);
        let mut ids: Vec<usize> = hits.iter().map(|h| h.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..12).collect::<Vec<_>>());
    }

    /// IVF recall@10 against the flat ground truth, swept across every
    /// `nprobe` setting: recall lives in [0,1], never *drops* when the
    /// probe width grows (probed lists at nprobe=a are a prefix of those
    /// at nprobe=b ≥ a, so the candidate set only gains members), and hits
    /// 1.0 with identical ordering at full probe.
    #[test]
    fn ivf_recall_at_10_monotone_in_nprobe(
        rows in rows_strategy(90, 3),
        nlist in 2usize..9,
        seed in any::<u64>(),
    ) {
        let dim = 3;
        let flat = FlatIndex::from_rows(dim, &rows);
        let mut ivf = IvfIndex::build(
            dim,
            &rows,
            IvfConfig { nlist, train_iters: 8, seed, ..Default::default() },
        );
        for q in 0..6usize {
            let query = &rows[q * dim..(q + 1) * dim];
            let exact: Vec<usize> = flat.search(query, 10).iter().map(|h| h.id).collect();
            let mut prev = 0.0f64;
            for nprobe in 1..=ivf.nlist() {
                ivf.set_nprobe(nprobe);
                let approx: Vec<usize> = ivf.search(query, 10).iter().map(|h| h.id).collect();
                let hit = exact.iter().filter(|id| approx.contains(id)).count();
                let recall = hit as f64 / exact.len() as f64;
                prop_assert!((0.0..=1.0).contains(&recall));
                prop_assert!(
                    recall + 1e-12 >= prev,
                    "recall dropped {prev} -> {recall} as nprobe grew to {nprobe}"
                );
                prev = recall;
            }
            prop_assert!((prev - 1.0).abs() < 1e-12, "full probe recall {prev} != 1");
            let full: Vec<usize> = ivf.search(query, 10).iter().map(|h| h.id).collect();
            prop_assert_eq!(&full, &exact, "full probe must equal the flat ordering");
        }
    }

    /// Incremental `add` keeps full-probe search exact: vectors inserted
    /// after `build` are routed to their nearest centroid's list and are
    /// found exactly where a from-scratch flat scan finds them.
    #[test]
    fn ivf_incremental_add_stays_exact_at_full_probe(
        rows in rows_strategy(70, 3),
        split in 30usize..60,
    ) {
        let dim = 3;
        let (train, tail) = rows.split_at(split * dim);
        let mut ivf = IvfIndex::build(
            dim,
            train,
            IvfConfig { nlist: 5, train_iters: 6, ..Default::default() },
        );
        for v in tail.chunks(dim) {
            ivf.add(v);
        }
        ivf.set_nprobe(ivf.nlist());
        let flat = FlatIndex::from_rows(dim, &rows);
        for q in [0usize, split - 1, 69] {
            let query = &rows[q * dim..(q + 1) * dim];
            let a: Vec<usize> = ivf.search(query, 10).iter().map(|h| h.id).collect();
            let b: Vec<usize> = flat.search(query, 10).iter().map(|h| h.id).collect();
            prop_assert_eq!(a, b);
        }
    }
}
