//! # flexer-ann
//!
//! Nearest-neighbour search for FlexER's intra-layer edges (§4.1.3) — the
//! Faiss substitute. The paper connects every multiplex-graph node to its
//! `k` nearest neighbours under L2 distance over the *initial* node
//! representation, using Faiss's exhaustive search; "Faiss offers multiple
//! heuristics that can reduce the computational effort" (§5.7).
//!
//! Accordingly this crate provides:
//! * [`FlatIndex`] — exact exhaustive L2 search (what the paper runs), and
//! * [`IvfIndex`] — an inverted-file approximate index over a k-means
//!   coarse quantizer (the heuristic alternative),
//!
//! plus [`knn_graph()`](knn_graph::knn_graph), which turns an index into the directed k-NN edge
//! lists the multiplex graph consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance;
pub mod flat;
pub mod ivf;
pub mod kmeans;
pub mod knn_graph;

pub use distance::l2_sq;
pub use flat::FlatIndex;
pub use ivf::{IvfConfig, IvfIndex};
pub use knn_graph::knn_graph;

/// A runtime-selected index: exact flat scan or approximate IVF. The
/// serving tier stores one per intent layer and the snapshot format tags
/// which variant was exported, so operators can trade recall for latency
/// without a recompile.
#[derive(Debug, Clone)]
pub enum AnyIndex {
    /// Exact exhaustive search (what the paper runs).
    Flat(FlatIndex),
    /// Inverted-file approximate search (the §5.7 heuristic).
    Ivf(IvfIndex),
}

impl AnyIndex {
    /// Appends one vector; returns its id (incremental ingest).
    pub fn add(&mut self, v: &[f32]) -> usize {
        match self {
            AnyIndex::Flat(i) => i.add(v),
            AnyIndex::Ivf(i) => i.add(v),
        }
    }

    /// Stored vector by id, in insertion order.
    pub fn vector(&self, id: usize) -> &[f32] {
        match self {
            AnyIndex::Flat(i) => i.vector(id),
            AnyIndex::Ivf(i) => i.vector(id),
        }
    }

    /// The full row-major vector buffer, id-major in insertion order —
    /// the zero-copy row source of the serving tier's batched gathers.
    pub fn data(&self) -> &[f32] {
        match self {
            AnyIndex::Flat(i) => i.data(),
            AnyIndex::Ivf(i) => i.data(),
        }
    }

    /// A copy of the index truncated to its first `n` vectors — the
    /// training-time prefix a serving snapshot restores. Flat data is a
    /// prefix slice. IVF adds only ever *append* to list tails, so each
    /// inverted list is ascending and the cut point is found by binary
    /// search instead of filtering every id; the data buffer is a single
    /// exact-capacity prefix copy, never the full grown vector.
    pub fn truncated(&self, n: usize) -> AnyIndex {
        match self {
            AnyIndex::Flat(f) => {
                AnyIndex::Flat(FlatIndex::from_rows(f.dim(), &f.data()[..n * f.dim()]))
            }
            AnyIndex::Ivf(i) => {
                let lists: Vec<Vec<usize>> = i
                    .lists()
                    .iter()
                    .map(|l| {
                        debug_assert!(l.windows(2).all(|w| w[0] < w[1]), "IVF lists are ascending");
                        l[..l.partition_point(|&id| id < n)].to_vec()
                    })
                    .collect();
                AnyIndex::Ivf(IvfIndex::from_parts(
                    i.dim(),
                    i.quantizer().clone(),
                    lists,
                    i.data()[..n * i.dim()].to_vec(),
                    i.nprobe(),
                ))
            }
        }
    }
}

impl VectorIndex for AnyIndex {
    fn len(&self) -> usize {
        match self {
            AnyIndex::Flat(i) => i.len(),
            AnyIndex::Ivf(i) => i.len(),
        }
    }

    fn dim(&self) -> usize {
        match self {
            AnyIndex::Flat(i) => i.dim(),
            AnyIndex::Ivf(i) => i.dim(),
        }
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        match self {
            AnyIndex::Flat(i) => i.search(query, k),
            AnyIndex::Ivf(i) => i.search(query, k),
        }
    }

    fn search_batch(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<Neighbor>> {
        match self {
            AnyIndex::Flat(i) => i.search_batch(queries, k),
            AnyIndex::Ivf(i) => i.search_batch(queries, k),
        }
    }
}

/// Panics with a clear message if any component is NaN/Inf. Every index
/// entry point runs this: a single non-finite coordinate makes `l2_sq`
/// return NaN, and NaN distances poison the `partial_cmp`-based top-k
/// ordering silently (every comparison "succeeds", the ranking is garbage).
pub fn assert_finite(v: &[f32], context: &str) {
    for (i, &x) in v.iter().enumerate() {
        assert!(
            x.is_finite(),
            "{context}: non-finite value {x} at component {i} — NaN/Inf would poison \
             the distance-based neighbour ordering"
        );
    }
}

/// A search hit: vector id and squared L2 distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Id of the stored vector.
    pub id: usize,
    /// Squared L2 distance from the query.
    pub dist: f32,
}

/// Common interface of the exact and approximate indexes.
pub trait VectorIndex {
    /// Number of stored vectors.
    fn len(&self) -> usize;
    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Vector dimensionality.
    fn dim(&self) -> usize;
    /// Returns up to `k` nearest stored vectors to `query`, ascending by
    /// distance, ties broken by ascending id.
    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor>;

    /// Multi-query search: one result list per query, in query order.
    /// Queries are independent, so they fan out across the `flexer-par`
    /// thread budget; each query runs the exact single-query [`search`],
    /// making the result bit-identical to a serial loop at any thread
    /// count.
    ///
    /// [`search`]: VectorIndex::search
    fn search_batch(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<Neighbor>>
    where
        Self: Sync + Sized,
    {
        flexer_par::parallel_map(queries.len(), |q| self.search(queries[q], k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivf::IvfConfig;

    fn rows(n: usize, dim: usize) -> Vec<f32> {
        let mut s = 0x9E3779B97F4A7C15u64;
        (0..n * dim)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn truncated_restores_pre_growth_index() {
        let dim = 4;
        let data = rows(80, dim);
        let (train, extra) = data.split_at(60 * dim);
        for mut index in [
            AnyIndex::Flat(FlatIndex::from_rows(dim, train)),
            AnyIndex::Ivf(IvfIndex::build(
                dim,
                train,
                IvfConfig { nlist: 5, nprobe: 5, ..Default::default() },
            )),
        ] {
            let before = index.clone();
            for v in extra.chunks(dim) {
                index.add(v);
            }
            assert_eq!(index.len(), 80);
            let cut = index.truncated(60);
            assert_eq!(cut.len(), 60);
            assert_eq!(cut.data(), before.data());
            let q = &data[3 * dim..4 * dim];
            assert_eq!(cut.search(q, 7), before.search(q, 7));
        }
    }

    #[test]
    fn data_is_id_major() {
        let dim = 3;
        let buf = rows(10, dim);
        let index = AnyIndex::Flat(FlatIndex::from_rows(dim, &buf));
        assert_eq!(index.data(), &buf[..]);
        assert_eq!(&index.data()[5 * dim..6 * dim], index.vector(5));
    }
}
