//! Distance kernels.

/// Squared L2 distance between two equal-length vectors. The inner loop is
/// a straight zip/fold so LLVM vectorizes it.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Four [`l2_sq`] evaluations with their dependency chains in flight at
/// once. Each row's accumulation runs in exactly the [`l2_sq`] fold order
/// — the returned bits are identical — but interleaving four rows hides
/// the f32 add latency the one-row-at-a-time scan serializes on (the sum
/// is a strict fold, so LLVM cannot reorder it; it *can* overlap four
/// independent folds).
#[inline]
pub fn l2_sq_x4(query: &[f32], rows: [&[f32]; 4]) -> [f32; 4] {
    let dim = query.len();
    let [r0, r1, r2, r3] = rows;
    debug_assert!(rows.iter().all(|r| r.len() == dim), "row dimension mismatch");
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (i, &q) in query.iter().enumerate() {
        let d0 = q - r0[i];
        let d1 = q - r1[i];
        let d2 = q - r2[i];
        let d3 = q - r3[i];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    [s0, s1, s2, s3]
}

/// Sixteen [`l2_sq`] evaluations at once: four queries against four rows,
/// every (query, row) fold in exact [`l2_sq`] order — bit-identical
/// results. Four in-flight chains (the [`l2_sq_x4`] shape) still leave the
/// scalar FMA pipeline half idle on a single core; sixteen independent
/// accumulators saturate it, and each row element loaded from the index is
/// reused by all four queries while it sits in a register.
#[inline]
pub fn l2_sq_x4x4(queries: [&[f32]; 4], rows: [&[f32]; 4]) -> [[f32; 4]; 4] {
    let dim = queries[0].len();
    debug_assert!(queries.iter().all(|q| q.len() == dim), "query dimension mismatch");
    debug_assert!(rows.iter().all(|r| r.len() == dim), "row dimension mismatch");
    let [q0, q1, q2, q3] = queries.map(|q| &q[..dim]);
    let [r0, r1, r2, r3] = rows.map(|r| &r[..dim]);
    let mut acc = [[0.0f32; 4]; 4];
    for i in 0..dim {
        let r = [r0[i], r1[i], r2[i], r3[i]];
        let q = [q0[i], q1[i], q2[i], q3[i]];
        for (a, &qv) in acc.iter_mut().zip(&q) {
            for (s, &rv) in a.iter_mut().zip(&r) {
                let d = qv - rv;
                *s += d * d;
            }
        }
    }
    acc
}

/// Eight queries against four rows: 32 independent exact-order folds. Same
/// bit-identity argument as [`l2_sq_x4x4`]; each loaded row element is
/// reused by all eight queries, pushing the op:load ratio high enough to
/// keep the FMA pipeline the bottleneck instead of the load ports.
#[inline]
pub fn l2_sq_x8x4(queries: [&[f32]; 8], rows: [&[f32]; 4]) -> [[f32; 4]; 8] {
    let dim = queries[0].len();
    debug_assert!(queries.iter().all(|q| q.len() == dim), "query dimension mismatch");
    debug_assert!(rows.iter().all(|r| r.len() == dim), "row dimension mismatch");
    let qs = queries.map(|q| &q[..dim]);
    let [r0, r1, r2, r3] = rows.map(|r| &r[..dim]);
    let mut acc = [[0.0f32; 4]; 8];
    for i in 0..dim {
        let r = [r0[i], r1[i], r2[i], r3[i]];
        for (a, q) in acc.iter_mut().zip(&qs) {
            let qv = q[i];
            for (s, &rv) in a.iter_mut().zip(&r) {
                let d = qv - rv;
                *s += d * d;
            }
        }
    }
    acc
}

/// Squared L2 distances from each of four queries to `m` consecutive rows
/// of a row-major buffer: `outs[q][j]` is query `q` against row `j`.
/// Bit-identical to four [`l2_sq_rows`] calls (every (query, row) pair is
/// an independent exact-order fold); the win is the 16-chain ILP of
/// [`l2_sq_x4x4`] plus 4× register reuse of every loaded row element.
pub fn l2_sq_rows_x4q(queries: [&[f32]; 4], rows: &[f32], outs: &mut [&mut [f32]; 4]) {
    let dim = queries[0].len();
    let m = outs[0].len();
    debug_assert!(queries.iter().all(|q| q.len() == dim), "query dimension mismatch");
    debug_assert!(outs.iter().all(|o| o.len() == m), "output length mismatch");
    debug_assert_eq!(rows.len(), m * dim, "whole rows");
    if dim == 0 {
        for o in outs.iter_mut() {
            o.fill(0.0);
        }
        return;
    }
    let (blocks, tail) = flexer_nn::kernels::split_rows4(rows, dim);
    let m4 = blocks.len() / (4 * dim) * 4;
    for (b, block) in blocks.chunks_exact(4 * dim).enumerate() {
        let d = l2_sq_x4x4(queries, flexer_nn::kernels::block4(block, dim));
        for (o, dq) in outs.iter_mut().zip(&d) {
            o[4 * b..4 * b + 4].copy_from_slice(dq);
        }
    }
    for (t, row) in tail.chunks_exact(dim).enumerate() {
        for (o, q) in outs.iter_mut().zip(&queries) {
            o[m4 + t] = l2_sq(q, row);
        }
    }
}

/// The eight-query analogue of [`l2_sq_rows_x4q`], built on
/// [`l2_sq_x8x4`]. Bit-identical to eight [`l2_sq_rows`] calls.
pub fn l2_sq_rows_x8q(queries: [&[f32]; 8], rows: &[f32], outs: &mut [&mut [f32]; 8]) {
    let dim = queries[0].len();
    let m = outs[0].len();
    debug_assert!(queries.iter().all(|q| q.len() == dim), "query dimension mismatch");
    debug_assert!(outs.iter().all(|o| o.len() == m), "output length mismatch");
    debug_assert_eq!(rows.len(), m * dim, "whole rows");
    if dim == 0 {
        for o in outs.iter_mut() {
            o.fill(0.0);
        }
        return;
    }
    let (blocks, tail) = flexer_nn::kernels::split_rows4(rows, dim);
    let m4 = blocks.len() / (4 * dim) * 4;
    for (b, block) in blocks.chunks_exact(4 * dim).enumerate() {
        let d = l2_sq_x8x4(queries, flexer_nn::kernels::block4(block, dim));
        for (o, dq) in outs.iter_mut().zip(&d) {
            o[4 * b..4 * b + 4].copy_from_slice(dq);
        }
    }
    for (t, row) in tail.chunks_exact(dim).enumerate() {
        for (o, q) in outs.iter_mut().zip(&queries) {
            o[m4 + t] = l2_sq(q, row);
        }
    }
}

/// Squared L2 distances from one query to `out.len()` consecutive rows of
/// a row-major buffer, four rows at a time via [`l2_sq_x4`]. Bit-identical
/// to calling [`l2_sq`] per row. The 4-row block shape is shared with the
/// packed matmul kernels (`flexer_nn::kernels`).
pub fn l2_sq_rows(query: &[f32], rows: &[f32], out: &mut [f32]) {
    let dim = query.len();
    debug_assert_eq!(rows.len(), out.len() * dim, "whole rows");
    if dim == 0 {
        out.fill(0.0);
        return;
    }
    let (blocks, tail) = flexer_nn::kernels::split_rows4(rows, dim);
    let mut outs = out.chunks_exact_mut(4);
    for (block, o) in blocks.chunks_exact(4 * dim).zip(&mut outs) {
        let d = l2_sq_x4(query, flexer_nn::kernels::block4(block, dim));
        o.copy_from_slice(&d);
    }
    for (row, o) in tail.chunks_exact(dim).zip(outs.into_remainder()) {
        *o = l2_sq(query, row);
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Cosine distance (`1 − cos`), safe for zero vectors (distance 1).
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_basics() {
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn l2_symmetry() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.0, 3.0, 1.5];
        assert_eq!(l2_sq(&a, &b), l2_sq(&b, &a));
    }

    #[test]
    fn dot_and_cosine() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((cosine_distance(&[1.0, 0.0], &[1.0, 0.0])).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_max() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 2.0]), 1.0);
    }

    #[test]
    fn blocked_scans_are_bit_identical_to_serial_l2() {
        // Awkward sizes on purpose: odd dim, a non-multiple-of-4 row count
        // (full blocks + remainder), values with rounding-sensitive spreads.
        for (n, dim) in [(1usize, 7usize), (4, 3), (11, 5), (64, 17), (67, 1)] {
            let mut s = 0x2545F4914F6CDD1Du64;
            let mut next = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / u32::MAX as f32).mul_add(2e3, -1e3) * 1e-3
            };
            let rows: Vec<f32> = (0..n * dim).map(|_| next()).collect();
            let query: Vec<f32> = (0..dim).map(|_| next()).collect();
            let mut out = vec![0.0f32; n];
            l2_sq_rows(&query, &rows, &mut out);
            for (id, &got) in out.iter().enumerate() {
                let want = l2_sq(&query, &rows[id * dim..(id + 1) * dim]);
                assert!(got.to_bits() == want.to_bits(), "row {id} of {n}x{dim}: {got} != {want}");
            }
        }
    }
}
