//! Distance kernels.

/// Squared L2 distance between two equal-length vectors. The inner loop is
/// a straight zip/fold so LLVM vectorizes it.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Cosine distance (`1 − cos`), safe for zero vectors (distance 1).
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_basics() {
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn l2_symmetry() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.0, 3.0, 1.5];
        assert_eq!(l2_sq(&a, &b), l2_sq(&b, &a));
    }

    #[test]
    fn dot_and_cosine() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((cosine_distance(&[1.0, 0.0], &[1.0, 0.0])).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_max() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 2.0]), 1.0);
    }
}
