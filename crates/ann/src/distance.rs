//! Distance kernels.

/// Squared L2 distance between two equal-length vectors. The inner loop is
/// a straight zip/fold so LLVM vectorizes it.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Four [`l2_sq`] evaluations with their dependency chains in flight at
/// once. Each row's accumulation runs in exactly the [`l2_sq`] fold order
/// — the returned bits are identical — but interleaving four rows hides
/// the f32 add latency the one-row-at-a-time scan serializes on (the sum
/// is a strict fold, so LLVM cannot reorder it; it *can* overlap four
/// independent folds).
#[inline]
pub fn l2_sq_x4(query: &[f32], rows: [&[f32]; 4]) -> [f32; 4] {
    let dim = query.len();
    let [r0, r1, r2, r3] = rows;
    debug_assert!(rows.iter().all(|r| r.len() == dim), "row dimension mismatch");
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (i, &q) in query.iter().enumerate() {
        let d0 = q - r0[i];
        let d1 = q - r1[i];
        let d2 = q - r2[i];
        let d3 = q - r3[i];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    [s0, s1, s2, s3]
}

/// Squared L2 distances from one query to `out.len()` consecutive rows of
/// a row-major buffer, four rows at a time via [`l2_sq_x4`]. Bit-identical
/// to calling [`l2_sq`] per row.
pub fn l2_sq_rows(query: &[f32], rows: &[f32], out: &mut [f32]) {
    let dim = query.len();
    debug_assert_eq!(rows.len(), out.len() * dim, "whole rows");
    if dim == 0 {
        out.fill(0.0);
        return;
    }
    let mut blocks = rows.chunks_exact(4 * dim);
    let mut outs = out.chunks_exact_mut(4);
    for (block, o) in (&mut blocks).zip(&mut outs) {
        let (r0, rest) = block.split_at(dim);
        let (r1, rest) = rest.split_at(dim);
        let (r2, r3) = rest.split_at(dim);
        let d = l2_sq_x4(query, [r0, r1, r2, r3]);
        o.copy_from_slice(&d);
    }
    for (row, o) in blocks.remainder().chunks_exact(dim).zip(outs.into_remainder()) {
        *o = l2_sq(query, row);
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Cosine distance (`1 − cos`), safe for zero vectors (distance 1).
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_basics() {
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn l2_symmetry() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.0, 3.0, 1.5];
        assert_eq!(l2_sq(&a, &b), l2_sq(&b, &a));
    }

    #[test]
    fn dot_and_cosine() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((cosine_distance(&[1.0, 0.0], &[1.0, 0.0])).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_max() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 2.0]), 1.0);
    }

    #[test]
    fn blocked_scans_are_bit_identical_to_serial_l2() {
        // Awkward sizes on purpose: odd dim, a non-multiple-of-4 row count
        // (full blocks + remainder), values with rounding-sensitive spreads.
        for (n, dim) in [(1usize, 7usize), (4, 3), (11, 5), (64, 17), (67, 1)] {
            let mut s = 0x2545F4914F6CDD1Du64;
            let mut next = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / u32::MAX as f32).mul_add(2e3, -1e3) * 1e-3
            };
            let rows: Vec<f32> = (0..n * dim).map(|_| next()).collect();
            let query: Vec<f32> = (0..dim).map(|_| next()).collect();
            let mut out = vec![0.0f32; n];
            l2_sq_rows(&query, &rows, &mut out);
            for (id, &got) in out.iter().enumerate() {
                let want = l2_sq(&query, &rows[id * dim..(id + 1) * dim]);
                assert!(got.to_bits() == want.to_bits(), "row {id} of {n}x{dim}: {got} != {want}");
            }
        }
    }
}
