//! Inverted-file (IVF) approximate index — the "Faiss heuristic" the paper
//! points to for reducing nearest-neighbour cost (§5.7).
//!
//! Vectors are partitioned by a k-means coarse quantizer; a query scans only
//! the `nprobe` closest partitions. `nprobe = nlist` degenerates to exact
//! search.

use crate::distance::l2_sq;
use crate::kmeans::KMeans;
use crate::{Neighbor, VectorIndex};

/// IVF construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfConfig {
    /// Number of inverted lists (k-means clusters).
    pub nlist: usize,
    /// Number of lists probed per query.
    pub nprobe: usize,
    /// K-means iterations for the coarse quantizer.
    pub train_iters: usize,
    /// Seed for the quantizer.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self { nlist: 16, nprobe: 4, train_iters: 15, seed: 0 }
    }
}

/// The inverted-file index.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    dim: usize,
    n: usize,
    quantizer: KMeans,
    /// `lists[c]` holds the vector ids assigned to centroid `c`.
    lists: Vec<Vec<usize>>,
    data: Vec<f32>,
    nprobe: usize,
}

impl IvfIndex {
    /// Trains the quantizer on the data and builds the inverted lists.
    pub fn build(dim: usize, rows: &[f32], config: IvfConfig) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(rows.len() % dim, 0, "row data must be a multiple of dim");
        let n = rows.len() / dim;
        let quantizer =
            KMeans::fit(rows, dim, config.nlist.max(1), config.train_iters, config.seed);
        let mut lists = vec![Vec::new(); quantizer.k.max(1)];
        for (i, &c) in quantizer.assignments.iter().enumerate() {
            lists[c].push(i);
        }
        Self { dim, n, quantizer, lists, data: rows.to_vec(), nprobe: config.nprobe.max(1) }
    }

    fn vector(&self, id: usize) -> &[f32] {
        &self.data[id * self.dim..(id + 1) * self.dim]
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Sets the probe width (clamped to `nlist`).
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.nprobe = nprobe.clamp(1, self.nlist());
    }

    /// Fraction of stored vectors scanned by an average query with the
    /// current `nprobe` — a cheap selectivity diagnostic.
    pub fn expected_scan_fraction(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let mut sizes: Vec<usize> = self.lists.iter().map(|l| l.len()).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let scanned: usize = sizes.iter().take(self.nprobe).sum();
        scanned as f64 / self.n as f64
    }
}

impl VectorIndex for IvfIndex {
    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if self.n == 0 || k == 0 {
            return Vec::new();
        }
        let order = self.quantizer.centroids_by_distance(query);
        let mut hits: Vec<Neighbor> = Vec::new();
        for &c in order.iter().take(self.nprobe.min(order.len())) {
            for &id in &self.lists[c] {
                hits.push(Neighbor { id, dist: l2_sq(query, self.vector(id)) });
            }
        }
        hits.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap().then(a.id.cmp(&b.id)));
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;

    fn pseudo_random_rows(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n * dim)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn full_probe_matches_flat_exactly() {
        let dim = 6;
        let rows = pseudo_random_rows(120, dim, 7);
        let mut ivf = IvfIndex::build(dim, &rows, IvfConfig { nlist: 8, ..Default::default() });
        ivf.set_nprobe(8);
        let flat = FlatIndex::from_rows(dim, &rows);
        let query = &rows[0..dim];
        let a = ivf.search(query, 5);
        let b = flat.search(query, 5);
        assert_eq!(
            a.iter().map(|h| h.id).collect::<Vec<_>>(),
            b.iter().map(|h| h.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn partial_probe_has_reasonable_recall() {
        let dim = 4;
        let rows = pseudo_random_rows(400, dim, 3);
        let mut ivf = IvfIndex::build(dim, &rows, IvfConfig { nlist: 10, ..Default::default() });
        ivf.set_nprobe(4);
        let flat = FlatIndex::from_rows(dim, &rows);
        let mut overlap = 0usize;
        let mut total = 0usize;
        for q in 0..20 {
            let query = &rows[q * dim..(q + 1) * dim];
            let approx: Vec<usize> = ivf.search(query, 10).iter().map(|h| h.id).collect();
            let exact: Vec<usize> = flat.search(query, 10).iter().map(|h| h.id).collect();
            overlap += exact.iter().filter(|id| approx.contains(id)).count();
            total += exact.len();
        }
        let recall = overlap as f64 / total as f64;
        assert!(recall > 0.5, "recall {recall}");
    }

    #[test]
    fn nearest_self_always_found() {
        // The query's own vector lives in the probed (nearest) list.
        let dim = 3;
        let rows = pseudo_random_rows(90, dim, 11);
        let ivf =
            IvfIndex::build(dim, &rows, IvfConfig { nlist: 6, nprobe: 1, ..Default::default() });
        for q in [0usize, 13, 57] {
            let query = &rows[q * dim..(q + 1) * dim];
            let hits = ivf.search(query, 1);
            assert_eq!(hits[0].id, q);
            assert_eq!(hits[0].dist, 0.0);
        }
    }

    #[test]
    fn scan_fraction_shrinks_with_fewer_probes() {
        let dim = 2;
        let rows = pseudo_random_rows(200, dim, 5);
        let mut ivf = IvfIndex::build(dim, &rows, IvfConfig { nlist: 10, ..Default::default() });
        ivf.set_nprobe(10);
        let full = ivf.expected_scan_fraction();
        ivf.set_nprobe(2);
        let partial = ivf.expected_scan_fraction();
        assert!((full - 1.0).abs() < 1e-9);
        assert!(partial < full);
    }

    #[test]
    fn empty_index() {
        let ivf = IvfIndex::build(2, &[], IvfConfig::default());
        assert!(ivf.search(&[0.0, 0.0], 3).is_empty());
        assert_eq!(ivf.expected_scan_fraction(), 0.0);
    }

    #[test]
    fn nprobe_clamped() {
        let rows = pseudo_random_rows(20, 2, 1);
        let mut ivf = IvfIndex::build(2, &rows, IvfConfig { nlist: 4, ..Default::default() });
        ivf.set_nprobe(1000);
        assert!(ivf.search(&rows[0..2], 3).len() == 3);
    }
}
