//! Inverted-file (IVF) approximate index — the "Faiss heuristic" the paper
//! points to for reducing nearest-neighbour cost (§5.7).
//!
//! Vectors are partitioned by a k-means coarse quantizer; a query scans only
//! the `nprobe` closest partitions. `nprobe = nlist` degenerates to exact
//! search.

use crate::distance::{l2_sq, l2_sq_x4};
use crate::kmeans::KMeans;
use crate::{assert_finite, Neighbor, VectorIndex};

/// IVF construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfConfig {
    /// Number of inverted lists (k-means clusters).
    pub nlist: usize,
    /// Number of lists probed per query.
    pub nprobe: usize,
    /// K-means iterations for the coarse quantizer.
    pub train_iters: usize,
    /// Seed for the quantizer.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self { nlist: 16, nprobe: 4, train_iters: 15, seed: 0 }
    }
}

/// The inverted-file index.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    dim: usize,
    n: usize,
    quantizer: KMeans,
    /// `lists[c]` holds the vector ids assigned to centroid `c`.
    lists: Vec<Vec<usize>>,
    data: Vec<f32>,
    nprobe: usize,
}

impl IvfIndex {
    /// Trains the quantizer on the data and builds the inverted lists.
    pub fn build(dim: usize, rows: &[f32], config: IvfConfig) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(rows.len() % dim, 0, "row data must be a multiple of dim");
        assert_finite(rows, "IvfIndex::build");
        let n = rows.len() / dim;
        let quantizer =
            KMeans::fit(rows, dim, config.nlist.max(1), config.train_iters, config.seed);
        let mut lists = vec![Vec::new(); quantizer.k.max(1)];
        for (i, &c) in quantizer.assignments.iter().enumerate() {
            lists[c].push(i);
        }
        let nprobe = config.nprobe.clamp(1, lists.len());
        Self { dim, n, quantizer, lists, data: rows.to_vec(), nprobe }
    }

    /// Appends one vector, routing it to its nearest coarse centroid's
    /// inverted list, and returns its id. The quantizer stays frozen — the
    /// standard incremental-insert semantics of an IVF index (Faiss's
    /// `add` after `train`): centroids reflect the training distribution,
    /// new vectors only join lists.
    pub fn add(&mut self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        assert_finite(v, "IvfIndex::add");
        assert!(self.quantizer.k > 0, "cannot add to an IVF index with an untrained quantizer");
        let c = self.quantizer.nearest_centroid(v);
        let id = self.n;
        self.lists[c].push(id);
        self.data.extend_from_slice(v);
        self.n += 1;
        id
    }

    /// Stored vector by id (insertion order).
    pub fn vector(&self, id: usize) -> &[f32] {
        &self.data[id * self.dim..(id + 1) * self.dim]
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Current probe width.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// The coarse quantizer (snapshot export).
    pub fn quantizer(&self) -> &KMeans {
        &self.quantizer
    }

    /// The inverted lists (snapshot export).
    pub fn lists(&self) -> &[Vec<usize>] {
        &self.lists
    }

    /// The full row-major vector buffer, in insertion order (snapshot
    /// export).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Reassembles an index from its snapshot parts. Panics unless the
    /// parts are mutually consistent (every id in exactly one list, data a
    /// whole number of rows, centroid dims matching).
    pub fn from_parts(
        dim: usize,
        quantizer: KMeans,
        lists: Vec<Vec<usize>>,
        data: Vec<f32>,
        nprobe: usize,
    ) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "row data must be a multiple of dim");
        assert_finite(&data, "IvfIndex::from_parts");
        let n = data.len() / dim;
        assert_eq!(quantizer.dim, dim, "quantizer dimensionality mismatch");
        assert_eq!(lists.len(), quantizer.k.max(1), "one inverted list per centroid required");
        let mut seen = vec![false; n];
        for list in &lists {
            for &id in list {
                assert!(id < n, "inverted list references vector {id} of {n}");
                assert!(!seen[id], "vector {id} appears in two inverted lists");
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every vector must appear in an inverted list");
        let nprobe = nprobe.clamp(1, lists.len());
        Self { dim, n, quantizer, lists, data, nprobe }
    }

    /// Sets the probe width (clamped to `nlist`).
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.nprobe = nprobe.clamp(1, self.nlist());
    }

    /// Fraction of stored vectors scanned by an average query with the
    /// current `nprobe` — a cheap selectivity diagnostic.
    pub fn expected_scan_fraction(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let mut sizes: Vec<usize> = self.lists.iter().map(|l| l.len()).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let scanned: usize = sizes.iter().take(self.nprobe).sum();
        scanned as f64 / self.n as f64
    }
}

impl VectorIndex for IvfIndex {
    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        assert_finite(query, "IvfIndex::search");
        if self.n == 0 || k == 0 {
            return Vec::new();
        }
        let order = self.quantizer.centroids_by_distance(query);
        let mut hits: Vec<Neighbor> = Vec::new();
        for &c in order.iter().take(self.nprobe.min(order.len())) {
            // Inverted-list rows are gathered four at a time: identical
            // distance bits, but the four fold chains overlap instead of
            // serializing on f32 add latency.
            let list = &self.lists[c];
            let whole = list.len() - list.len() % 4;
            for ids in list[..whole].chunks_exact(4) {
                let d = l2_sq_x4(
                    query,
                    [
                        self.vector(ids[0]),
                        self.vector(ids[1]),
                        self.vector(ids[2]),
                        self.vector(ids[3]),
                    ],
                );
                for (&id, &dist) in ids.iter().zip(&d) {
                    hits.push(Neighbor { id, dist });
                }
            }
            for &id in &list[whole..] {
                hits.push(Neighbor { id, dist: l2_sq(query, self.vector(id)) });
            }
        }
        hits.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap().then(a.id.cmp(&b.id)));
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;

    fn pseudo_random_rows(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n * dim)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn full_probe_matches_flat_exactly() {
        let dim = 6;
        let rows = pseudo_random_rows(120, dim, 7);
        let mut ivf = IvfIndex::build(dim, &rows, IvfConfig { nlist: 8, ..Default::default() });
        ivf.set_nprobe(8);
        let flat = FlatIndex::from_rows(dim, &rows);
        let query = &rows[0..dim];
        let a = ivf.search(query, 5);
        let b = flat.search(query, 5);
        assert_eq!(
            a.iter().map(|h| h.id).collect::<Vec<_>>(),
            b.iter().map(|h| h.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn partial_probe_has_reasonable_recall() {
        let dim = 4;
        let rows = pseudo_random_rows(400, dim, 3);
        let mut ivf = IvfIndex::build(dim, &rows, IvfConfig { nlist: 10, ..Default::default() });
        ivf.set_nprobe(4);
        let flat = FlatIndex::from_rows(dim, &rows);
        let mut overlap = 0usize;
        let mut total = 0usize;
        for q in 0..20 {
            let query = &rows[q * dim..(q + 1) * dim];
            let approx: Vec<usize> = ivf.search(query, 10).iter().map(|h| h.id).collect();
            let exact: Vec<usize> = flat.search(query, 10).iter().map(|h| h.id).collect();
            overlap += exact.iter().filter(|id| approx.contains(id)).count();
            total += exact.len();
        }
        let recall = overlap as f64 / total as f64;
        assert!(recall > 0.5, "recall {recall}");
    }

    #[test]
    fn nearest_self_always_found() {
        // The query's own vector lives in the probed (nearest) list.
        let dim = 3;
        let rows = pseudo_random_rows(90, dim, 11);
        let ivf =
            IvfIndex::build(dim, &rows, IvfConfig { nlist: 6, nprobe: 1, ..Default::default() });
        for q in [0usize, 13, 57] {
            let query = &rows[q * dim..(q + 1) * dim];
            let hits = ivf.search(query, 1);
            assert_eq!(hits[0].id, q);
            assert_eq!(hits[0].dist, 0.0);
        }
    }

    #[test]
    fn scan_fraction_shrinks_with_fewer_probes() {
        let dim = 2;
        let rows = pseudo_random_rows(200, dim, 5);
        let mut ivf = IvfIndex::build(dim, &rows, IvfConfig { nlist: 10, ..Default::default() });
        ivf.set_nprobe(10);
        let full = ivf.expected_scan_fraction();
        ivf.set_nprobe(2);
        let partial = ivf.expected_scan_fraction();
        assert!((full - 1.0).abs() < 1e-9);
        assert!(partial < full);
    }

    #[test]
    fn incremental_add_matches_batch_build_search() {
        // Vectors added after build join the nearest centroid's list, so
        // full-probe search over the grown index stays exact.
        let dim = 4;
        let rows = pseudo_random_rows(150, dim, 21);
        let (train, extra) = rows.split_at(100 * dim);
        let mut ivf =
            IvfIndex::build(dim, train, IvfConfig { nlist: 6, nprobe: 6, ..Default::default() });
        for v in extra.chunks(dim) {
            ivf.add(v);
        }
        assert_eq!(ivf.len(), 150);
        let flat = FlatIndex::from_rows(dim, &rows);
        for q in [3usize, 77, 120, 149] {
            let query = &rows[q * dim..(q + 1) * dim];
            let a: Vec<usize> = ivf.search(query, 5).iter().map(|h| h.id).collect();
            let b: Vec<usize> = flat.search(query, 5).iter().map(|h| h.id).collect();
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn added_vector_retrievable_with_one_probe() {
        let dim = 3;
        let rows = pseudo_random_rows(60, dim, 9);
        let mut ivf =
            IvfIndex::build(dim, &rows, IvfConfig { nlist: 5, nprobe: 1, ..Default::default() });
        let v = [0.25f32, -0.75, 0.5];
        let id = ivf.add(&v);
        assert_eq!(id, 60);
        let hits = ivf.search(&v, 1);
        assert_eq!(hits[0].id, id);
        assert_eq!(hits[0].dist, 0.0);
    }

    #[test]
    fn from_parts_roundtrip_preserves_search() {
        let dim = 3;
        let rows = pseudo_random_rows(80, dim, 13);
        let ivf =
            IvfIndex::build(dim, &rows, IvfConfig { nlist: 7, nprobe: 3, ..Default::default() });
        let rebuilt = IvfIndex::from_parts(
            dim,
            ivf.quantizer().clone(),
            ivf.lists().to_vec(),
            ivf.data().to_vec(),
            ivf.nprobe(),
        );
        let query = &rows[5 * dim..6 * dim];
        assert_eq!(ivf.search(query, 8), rebuilt.search(query, 8));
        assert_eq!(rebuilt.nprobe(), 3);
    }

    #[test]
    #[should_panic(expected = "IvfIndex::add: non-finite value")]
    fn add_rejects_nan() {
        let rows = pseudo_random_rows(20, 2, 1);
        let mut ivf = IvfIndex::build(2, &rows, IvfConfig::default());
        ivf.add(&[f32::NAN, 0.0]);
    }

    #[test]
    #[should_panic(expected = "IvfIndex::build: non-finite value")]
    fn build_rejects_inf() {
        let _ = IvfIndex::build(2, &[0.0, f32::NEG_INFINITY], IvfConfig::default());
    }

    #[test]
    fn empty_index() {
        let ivf = IvfIndex::build(2, &[], IvfConfig::default());
        assert!(ivf.search(&[0.0, 0.0], 3).is_empty());
        assert_eq!(ivf.expected_scan_fraction(), 0.0);
    }

    #[test]
    fn nprobe_clamped() {
        let rows = pseudo_random_rows(20, 2, 1);
        let mut ivf = IvfIndex::build(2, &rows, IvfConfig { nlist: 4, ..Default::default() });
        ivf.set_nprobe(1000);
        assert!(ivf.search(&rows[0..2], 3).len() == 3);
    }
}
