//! Exact exhaustive L2 index — the semantics of `faiss.IndexFlatL2`, which
//! is what the paper's experiments run (§5.7 notes only the exhaustive
//! version is used).

use crate::distance::{l2_sq_rows, l2_sq_rows_x4q, l2_sq_rows_x8q};
use crate::{assert_finite, Neighbor, VectorIndex};

/// Flat (brute-force) index over row-major vectors.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    dim: usize,
    data: Vec<f32>,
}

/// Queries interleaved per index block in [`FlatIndex::search_batch`]. The
/// stored-vector block is streamed once and reused for every query in the
/// group while it is still cache-hot, dividing index memory traffic by the
/// group width — the exhaustive scan is bandwidth-bound, so this is the
/// whole win. 16 queries × a 64-row block keeps the working set in L1/L2
/// at FlexER's embedding widths.
const QUERY_GROUP: usize = 16;

impl FlatIndex {
    /// Empty index of the given dimensionality.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self { dim, data: Vec::new() }
    }

    /// Builds an index directly from `n × dim` row-major data.
    pub fn from_rows(dim: usize, rows: &[f32]) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(rows.len() % dim, 0, "row data must be a multiple of dim");
        assert_finite(rows, "FlatIndex::from_rows");
        Self { dim, data: rows.to_vec() }
    }

    /// Appends one vector; returns its id.
    pub fn add(&mut self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        assert_finite(v, "FlatIndex::add");
        self.data.extend_from_slice(v);
        self.len() - 1
    }

    /// Stored vector by id.
    pub fn vector(&self, id: usize) -> &[f32] {
        &self.data[id * self.dim..(id + 1) * self.dim]
    }

    /// The full `n × dim` row-major buffer (snapshot export).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// One pass over the stored vectors for a group of queries. Each query
    /// sees the index blocks in the same order as [`FlatIndex::search`];
    /// eights (then quads, then singles) of queries stream every block
    /// through the multi-chain `l2_sq_rows_x8q`/`l2_sq_rows_x4q` kernels
    /// (each (query, row) pair an independent exact-order fold — bitwise
    /// the single-query distances), then each query's distances feed the
    /// same bounded-insertion top-k. Every
    /// per-query result is bitwise equal to a standalone `search` call;
    /// only traversal interleaving (and cache/ILP behaviour) differs.
    fn search_group(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<Neighbor>> {
        let n = self.len();
        let nq = queries.len();
        let mut tops: Vec<Vec<Neighbor>> =
            queries.iter().map(|_| Vec::with_capacity(k + 1)).collect();
        let mut dists = [[0.0f32; 64]; 8];
        let mut base = 0;
        while base < n {
            let m = (n - base).min(64);
            let rows = &self.data[base * self.dim..(base + m) * self.dim];
            let mut q0 = 0;
            while q0 < nq {
                let qn = (nq - q0).min(8);
                if qn == 8 {
                    let eight: [&[f32]; 8] = std::array::from_fn(|c| queries[q0 + c]);
                    let [d0, d1, d2, d3, d4, d5, d6, d7] = &mut dists;
                    let mut outs = [
                        &mut d0[..m],
                        &mut d1[..m],
                        &mut d2[..m],
                        &mut d3[..m],
                        &mut d4[..m],
                        &mut d5[..m],
                        &mut d6[..m],
                        &mut d7[..m],
                    ];
                    l2_sq_rows_x8q(eight, rows, &mut outs);
                } else if qn >= 4 {
                    let quad: [&[f32]; 4] = std::array::from_fn(|c| queries[q0 + c]);
                    let [d0, d1, d2, d3, ..] = &mut dists;
                    let mut outs = [&mut d0[..m], &mut d1[..m], &mut d2[..m], &mut d3[..m]];
                    l2_sq_rows_x4q(quad, rows, &mut outs);
                    for (c, query) in queries[q0 + 4..q0 + qn].iter().enumerate() {
                        l2_sq_rows(query, rows, &mut dists[4 + c][..m]);
                    }
                } else {
                    for (c, query) in queries[q0..q0 + qn].iter().enumerate() {
                        l2_sq_rows(query, rows, &mut dists[c][..m]);
                    }
                }
                for (c, top) in tops[q0..q0 + qn].iter_mut().enumerate() {
                    for (j, &dist) in dists[c][..m].iter().enumerate() {
                        if top.len() == k && dist >= top[k - 1].dist {
                            continue;
                        }
                        let id = base + j;
                        let pos = top.iter().position(|nb| dist < nb.dist).unwrap_or(top.len());
                        top.insert(pos, Neighbor { id, dist });
                        if top.len() > k {
                            top.pop();
                        }
                    }
                }
                q0 += qn;
            }
            base += m;
        }
        tops
    }
}

impl VectorIndex for FlatIndex {
    fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        assert_finite(query, "FlatIndex::search");
        let n = self.len();
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        // Bounded insertion into a sorted top-k buffer: O(n·k) worst case but
        // k ≤ 10 in FlexER, and the distance scan dominates anyway — so the
        // scan runs through the blocked kernel (bit-identical distances,
        // ~4× the throughput of a row-at-a-time fold), a stack block of
        // distances at a time.
        let mut top: Vec<Neighbor> = Vec::with_capacity(k + 1);
        let mut dists = [0.0f32; 64];
        let mut base = 0;
        while base < n {
            let m = (n - base).min(dists.len());
            l2_sq_rows(query, &self.data[base * self.dim..(base + m) * self.dim], &mut dists[..m]);
            for (j, &dist) in dists[..m].iter().enumerate() {
                if top.len() == k && dist >= top[k - 1].dist {
                    continue;
                }
                let id = base + j;
                let pos = top.iter().position(|nb| dist < nb.dist).unwrap_or(top.len());
                top.insert(pos, Neighbor { id, dist });
                if top.len() > k {
                    top.pop();
                }
            }
            base += m;
        }
        top
    }

    /// Query-blocked exhaustive scan: groups of [`QUERY_GROUP`] queries
    /// share each pass over the stored vectors (groups fan out across the
    /// `flexer-par` thread budget). Bit-identical to calling
    /// [`search`](FlatIndex::search) per query — see
    /// [`FlatIndex::search_group`].
    fn search_batch(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<Neighbor>> {
        for query in queries {
            assert_eq!(query.len(), self.dim, "query dimension mismatch");
            assert_finite(query, "FlatIndex::search");
        }
        let k = k.min(self.len());
        if k == 0 {
            return vec![Vec::new(); queries.len()];
        }
        let n_groups = queries.len().div_ceil(QUERY_GROUP);
        let per_group: Vec<Vec<Vec<Neighbor>>> = flexer_par::parallel_map(n_groups, |g| {
            let q0 = g * QUERY_GROUP;
            let group = &queries[q0..(q0 + QUERY_GROUP).min(queries.len())];
            self.search_group(group, k)
        });
        per_group.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_index() -> FlatIndex {
        // Points 0..8 on a line at x = id.
        let mut idx = FlatIndex::new(2);
        for i in 0..8 {
            idx.add(&[i as f32, 0.0]);
        }
        idx
    }

    #[test]
    fn nearest_is_itself() {
        let idx = grid_index();
        let hits = idx.search(&[3.0, 0.0], 1);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 3);
        assert_eq!(hits[0].dist, 0.0);
    }

    #[test]
    fn results_sorted_ascending() {
        let idx = grid_index();
        let hits = idx.search(&[2.2, 0.0], 4);
        let ids: Vec<usize> = hits.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![2, 3, 1, 4]);
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn ties_broken_by_id() {
        let mut idx = FlatIndex::new(1);
        idx.add(&[1.0]);
        idx.add(&[-1.0]);
        idx.add(&[1.0]);
        let hits = idx.search(&[0.0], 3);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        // and with k=2 the smallest ids among the tie win
        let hits = idx.search(&[0.0], 2);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn k_larger_than_index_is_clamped() {
        let idx = grid_index();
        assert_eq!(idx.search(&[0.0, 0.0], 100).len(), 8);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = FlatIndex::new(3);
        assert!(idx.search(&[0.0, 0.0, 0.0], 5).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn from_rows_matches_adds() {
        let a = FlatIndex::from_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        let mut b = FlatIndex::new(2);
        b.add(&[1.0, 2.0]);
        b.add(&[3.0, 4.0]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.vector(1), b.vector(1));
    }

    #[test]
    fn search_batch_matches_serial_searches_at_any_thread_count() {
        let idx = grid_index();
        let queries: Vec<Vec<f32>> = (0..9).map(|i| vec![i as f32 * 0.7, 0.3]).collect();
        let refs: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
        for threads in [1usize, 2, 5, 16] {
            let batch = flexer_par::with_threads(threads, || idx.search_batch(&refs, 3));
            assert_eq!(batch.len(), refs.len());
            for (q, hits) in refs.iter().zip(&batch) {
                assert_eq!(hits, &idx.search(q, 3), "{threads} threads");
            }
        }
    }

    // Regression: NaN distances used to poison the `partial_cmp`-based
    // top-k buffer silently — a NaN never compares smaller, so it parked at
    // the end of the buffer and displaced real neighbours. Non-finite input
    // is now rejected at every entry point instead.
    #[test]
    #[should_panic(expected = "FlatIndex::add: non-finite value")]
    fn add_rejects_nan() {
        let mut idx = FlatIndex::new(2);
        idx.add(&[0.0, f32::NAN]);
    }

    #[test]
    #[should_panic(expected = "FlatIndex::from_rows: non-finite value")]
    fn from_rows_rejects_inf() {
        let _ = FlatIndex::from_rows(2, &[1.0, f32::INFINITY]);
    }

    #[test]
    #[should_panic(expected = "FlatIndex::search: non-finite value")]
    fn search_rejects_nan_query() {
        let idx = grid_index();
        let _ = idx.search(&[f32::NAN, 0.0], 3);
    }

    #[test]
    fn exactness_against_naive_scan() {
        // Randomish deterministic data; compare against full sort.
        let dim = 4;
        let n = 60;
        let mut data = Vec::with_capacity(n * dim);
        let mut s = 123456789u64;
        for _ in 0..n * dim {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            data.push(((s >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0);
        }
        let idx = FlatIndex::from_rows(dim, &data);
        let query = [0.1, -0.2, 0.3, 0.0];
        let hits = idx.search(&query, 7);
        let mut all: Vec<Neighbor> = (0..n)
            .map(|id| Neighbor { id, dist: crate::distance::l2_sq(&query, idx.vector(id)) })
            .collect();
        all.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap().then(a.id.cmp(&b.id)));
        for (h, e) in hits.iter().zip(all.iter()) {
            assert_eq!(h.id, e.id);
            assert!((h.dist - e.dist).abs() < 1e-6);
        }
    }
}
