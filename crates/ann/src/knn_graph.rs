//! Directed k-NN edge lists for the multiplex graph's intra-layer edges
//! (§4.1.3): every node receives incoming edges from its `k` nearest
//! neighbours, self excluded, computed once over the initial representation
//! and fixed thereafter.

use crate::{Neighbor, VectorIndex};

/// For each of the `n` stored vectors of `index`, returns the ids of its
/// `k` nearest *other* vectors (ascending by distance). `k` is clamped to
/// `n − 1`. Edges are directional: `j ∈ out[i]` does not imply
/// `i ∈ out[j]` — matching the paper's note that intra-layer edges are not
/// symmetric.
///
/// The per-node searches are independent and fan out across the
/// `flexer-par` thread budget; each node runs the exact serial search, so
/// the edge lists are identical at any thread count.
pub fn knn_graph<I: VectorIndex + StoredVectors + Sync>(index: &I, k: usize) -> Vec<Vec<usize>> {
    let n = index.len();
    let k = k.min(n.saturating_sub(1));
    if k == 0 {
        return vec![Vec::new(); n];
    }
    flexer_par::parallel_map(n, |i| {
        // Ask for k+1 to absorb the self hit, then drop it.
        let hits: Vec<Neighbor> = index.search(index.stored(i), k + 1);
        let mut ids: Vec<usize> = hits.into_iter().map(|h| h.id).filter(|&id| id != i).collect();
        ids.truncate(k);
        ids
    })
}

/// Indexes that expose their stored vectors (needed to query each point
/// against the rest).
pub trait StoredVectors {
    /// Stored vector by id.
    fn stored(&self, id: usize) -> &[f32];
}

impl StoredVectors for crate::flat::FlatIndex {
    fn stored(&self, id: usize) -> &[f32] {
        self.vector(id)
    }
}

impl StoredVectors for crate::ivf::IvfIndex {
    fn stored(&self, id: usize) -> &[f32] {
        self.vector(id)
    }
}

impl StoredVectors for crate::AnyIndex {
    fn stored(&self, id: usize) -> &[f32] {
        self.vector(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;

    fn line_index(n: usize) -> FlatIndex {
        let mut idx = FlatIndex::new(1);
        for i in 0..n {
            idx.add(&[i as f32]);
        }
        idx
    }

    #[test]
    fn excludes_self_and_respects_k() {
        let idx = line_index(6);
        let g = knn_graph(&idx, 2);
        assert_eq!(g.len(), 6);
        for (i, nbrs) in g.iter().enumerate() {
            assert_eq!(nbrs.len(), 2);
            assert!(!nbrs.contains(&i));
        }
        // Node 0's nearest others are 1 then 2.
        assert_eq!(g[0], vec![1, 2]);
        // Node 3's nearest others are 2 and 4 (tie broken by id).
        assert_eq!(g[3], vec![2, 4]);
    }

    #[test]
    fn k_zero_gives_no_edges() {
        let idx = line_index(4);
        let g = knn_graph(&idx, 0);
        assert!(g.iter().all(|n| n.is_empty()));
    }

    #[test]
    fn k_clamped_to_n_minus_one() {
        let idx = line_index(3);
        let g = knn_graph(&idx, 10);
        for nbrs in &g {
            assert_eq!(nbrs.len(), 2);
        }
    }

    #[test]
    fn directionality_possible() {
        // 0 and 1 are close; 2 is far but its nearest neighbours include 1.
        let mut idx = FlatIndex::new(1);
        idx.add(&[0.0]);
        idx.add(&[1.0]);
        idx.add(&[100.0]);
        let g = knn_graph(&idx, 1);
        assert_eq!(g[2], vec![1]); // 2 → 1
        assert_eq!(g[1], vec![0]); // but 1 → 0, not 1 → 2
    }

    #[test]
    fn single_node_graph() {
        let idx = line_index(1);
        let g = knn_graph(&idx, 5);
        assert_eq!(g, vec![Vec::<usize>::new()]);
    }
}
