//! Seeded Lloyd's k-means with k-means++ initialization — the coarse
//! quantizer behind the IVF index.

use crate::distance::l2_sq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// K-means result: row-major centroids and per-point assignments.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Number of centroids.
    pub k: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Row-major centroid matrix, `k × dim`.
    pub centroids: Vec<f32>,
    /// Cluster id per input point.
    pub assignments: Vec<usize>,
}

impl KMeans {
    /// Runs k-means++ + Lloyd's iterations on `n × dim` row-major `data`.
    /// `k` is clamped to the number of points.
    pub fn fit(data: &[f32], dim: usize, k: usize, max_iters: usize, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "data must be a multiple of dim");
        let n = data.len() / dim;
        let k = k.clamp(1, n.max(1));
        let row = |i: usize| &data[i * dim..(i + 1) * dim];
        let mut rng = StdRng::seed_from_u64(seed);

        if n == 0 {
            return Self { k: 0, dim, centroids: Vec::new(), assignments: Vec::new() };
        }

        // k-means++ seeding.
        let mut centroids: Vec<f32> = Vec::with_capacity(k * dim);
        let first = rng.gen_range(0..n);
        centroids.extend_from_slice(row(first));
        let mut min_dist: Vec<f32> = (0..n).map(|i| l2_sq(row(i), row(first))).collect();
        while centroids.len() / dim < k {
            let total: f32 = min_dist.iter().sum();
            let pick = if total <= 0.0 {
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut chosen = n - 1;
                for (i, &d) in min_dist.iter().enumerate() {
                    if target < d {
                        chosen = i;
                        break;
                    }
                    target -= d;
                }
                chosen
            };
            centroids.extend_from_slice(row(pick));
            let c = centroids.len() / dim - 1;
            for (i, md) in min_dist.iter_mut().enumerate() {
                let d = l2_sq(row(i), &centroids[c * dim..(c + 1) * dim]);
                if d < *md {
                    *md = d;
                }
            }
        }

        // Lloyd iterations.
        let mut assignments = vec![0usize; n];
        for _ in 0..max_iters {
            let mut changed = false;
            for (i, a) in assignments.iter_mut().enumerate() {
                let mut best = (f32::INFINITY, 0usize);
                for c in 0..k {
                    let d = l2_sq(row(i), &centroids[c * dim..(c + 1) * dim]);
                    if d < best.0 {
                        best = (d, c);
                    }
                }
                if *a != best.1 {
                    *a = best.1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            let mut sums = vec![0.0f32; k * dim];
            let mut counts = vec![0usize; k];
            for (i, &c) in assignments.iter().enumerate() {
                counts[c] += 1;
                for (s, &v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(row(i)) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for (dst, s) in centroids[c * dim..(c + 1) * dim]
                        .iter_mut()
                        .zip(&sums[c * dim..(c + 1) * dim])
                    {
                        *dst = s / counts[c] as f32;
                    }
                }
                // Empty clusters keep their previous centroid.
            }
        }
        Self { k, dim, centroids, assignments }
    }

    /// Centroid row `c`.
    pub fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// Index of the nearest centroid to `v`.
    pub fn nearest_centroid(&self, v: &[f32]) -> usize {
        let mut best = (f32::INFINITY, 0usize);
        for c in 0..self.k {
            let d = l2_sq(v, self.centroid(c));
            if d < best.0 {
                best = (d, c);
            }
        }
        best.1
    }

    /// Centroids sorted by distance to `v`, ascending.
    pub fn centroids_by_distance(&self, v: &[f32]) -> Vec<usize> {
        let mut order: Vec<(f32, usize)> =
            (0..self.k).map(|c| (l2_sq(v, self.centroid(c)), c)).collect();
        order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        order.into_iter().map(|(_, c)| c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs must be split into two clusters.
    #[test]
    fn separates_two_blobs() {
        let mut data = Vec::new();
        for i in 0..20 {
            data.extend_from_slice(&[i as f32 * 0.01, 0.0]);
        }
        for i in 0..20 {
            data.extend_from_slice(&[100.0 + i as f32 * 0.01, 0.0]);
        }
        let km = KMeans::fit(&data, 2, 2, 20, 0);
        let first = km.assignments[0];
        assert!(km.assignments[..20].iter().all(|&a| a == first));
        assert!(km.assignments[20..].iter().all(|&a| a != first));
    }

    #[test]
    fn k_clamped_to_points() {
        let data = vec![0.0, 0.0, 1.0, 1.0];
        let km = KMeans::fit(&data, 2, 10, 5, 0);
        assert_eq!(km.k, 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let data: Vec<f32> = (0..60).map(|i| (i % 7) as f32).collect();
        let a = KMeans::fit(&data, 3, 4, 10, 5);
        let b = KMeans::fit(&data, 3, 4, 10, 5);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn nearest_centroid_consistent_with_assignments() {
        let data: Vec<f32> = (0..40).map(|i| if i < 20 { 0.0 } else { 9.0 }).collect();
        let km = KMeans::fit(&data, 1, 2, 20, 1);
        for i in 0..40 {
            let v = &data[i..i + 1];
            assert_eq!(km.nearest_centroid(v), km.assignments[i]);
        }
    }

    #[test]
    fn centroids_by_distance_orders_all() {
        let data = vec![0.0, 5.0, 10.0];
        let km = KMeans::fit(&data, 1, 3, 10, 2);
        let order = km.centroids_by_distance(&[0.0]);
        assert_eq!(order.len(), 3);
        let d0 = l2_sq(&[0.0], km.centroid(order[0]));
        let d2 = l2_sq(&[0.0], km.centroid(order[2]));
        assert!(d0 <= d2);
    }

    #[test]
    fn empty_data() {
        let km = KMeans::fit(&[], 3, 2, 5, 0);
        assert_eq!(km.k, 0);
        assert!(km.assignments.is_empty());
    }
}
