//! # flexer-par
//!
//! The shared parallel execution layer of the FlexER workspace. FlexER's
//! compute is embarrassingly parallel at every level — *P* independent
//! GNNs over the same multiplex graph, independent rows of a matmul,
//! independent queries against a flat ANN index — and this crate is the one
//! place that turns that structure into threads.
//!
//! The design contract, relied on by `flexer-nn`, `flexer-ann`,
//! `flexer-graph` and `flexer-core`:
//!
//! * **Determinism.** Work items are split into contiguous blocks and every
//!   item is computed by exactly the same code as the serial path, in the
//!   same per-item floating-point order. Results are therefore bit-identical
//!   for any thread count, including 1 and including the `parallel` feature
//!   being disabled entirely.
//! * **Rayon-compatible configuration.** The thread budget honours
//!   `RAYON_NUM_THREADS` (and `FLEXER_NUM_THREADS`) so operators can pin the
//!   pool exactly as they would with rayon. This crate is the in-tree stand-in
//!   for a rayon dependency (the build environment is offline); its API is
//!   deliberately shaped so swapping the internals for `rayon::scope` is a
//!   one-file change.
//! * **Scoped borrows.** Everything runs on [`std::thread::scope`], so
//!   closures may borrow from the caller's stack — no `'static` bounds, no
//!   `Arc` plumbing.
//!
//! With the `parallel` feature disabled (or a budget of one thread) every
//! function here is a plain serial loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;

thread_local! {
    /// Scoped override installed by [`with_threads`]; inherited by workers.
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Returns the maximum number of worker threads a parallel region may use:
/// the innermost [`with_threads`] override if one is active, otherwise
/// `RAYON_NUM_THREADS` / `FLEXER_NUM_THREADS` from the environment,
/// otherwise [`std::thread::available_parallelism`]. Always at least 1, and
/// exactly 1 when the `parallel` feature is off.
pub fn max_threads() -> usize {
    if !cfg!(feature = "parallel") {
        return 1;
    }
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    for var in ["RAYON_NUM_THREADS", "FLEXER_NUM_THREADS"] {
        if let Some(n) = std::env::var(var).ok().and_then(|v| v.parse::<usize>().ok()) {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` with the thread budget pinned to `n` (≥ 1). The override is
/// scoped to the closure and inherited by any worker threads it spawns, so
/// `with_threads(1, …)` forces a fully serial execution — the lever the
/// determinism tests and the scaling benchmarks use.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = OverrideGuard::install(Some(n.max(1)));
    f()
}

/// Restores the previous thread-budget override on drop, so an unwinding
/// closure cannot leave a stale budget pinned on the thread.
struct OverrideGuard {
    prev: Option<usize>,
}

impl OverrideGuard {
    fn install(value: Option<usize>) -> Self {
        Self { prev: THREAD_OVERRIDE.with(|cell| cell.replace(value)) }
    }
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        THREAD_OVERRIDE.with(|cell| cell.set(prev));
    }
}

/// The budget each worker of a region that used `threads` of `budget`
/// should pass down to nested regions: the remainder of the budget, split
/// evenly. Keeps total concurrency ≈ the configured budget instead of
/// multiplying it at every nesting level (rayon's global pool has the same
/// effect).
fn nested_budget(budget: usize, threads: usize) -> usize {
    (budget / threads).max(1)
}

/// Maps `f` over `0..n`, returning results in index order. Items are
/// partitioned into contiguous blocks, one per worker; each item sees
/// exactly the serial computation, so output is bit-identical to
/// `(0..n).map(f).collect()` for every thread count.
pub fn parallel_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let budget = max_threads();
    let threads = budget.min(n).max(1);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(n, || None);
    let inner = nested_budget(budget, threads);
    std::thread::scope(|s| {
        for (b, block) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                let _guard = OverrideGuard::install(Some(inner));
                let start = b * chunk;
                for (off, slot) in block.iter_mut().enumerate() {
                    *slot = Some(f(start + off));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// Maps `f` over the items of a slice, in order (index-parallel shorthand).
pub fn parallel_map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map(items.len(), |i| f(&items[i]))
}

/// Splits `data` into rows of `row_len` elements and calls
/// `f(row_index, row)` for every row, fanning contiguous row-blocks out
/// across the thread budget. Rows must be independent; because each row is
/// produced by the same code as the serial loop, results are bit-identical
/// for any thread count. `data.len()` must be a multiple of `row_len`.
pub fn for_each_row_mut<T, F>(data: &mut [T], row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "row length must be positive");
    assert_eq!(data.len() % row_len, 0, "data must be whole rows");
    let n_rows = data.len() / row_len;
    let budget = max_threads();
    let threads = budget.min(n_rows).max(1);
    if threads <= 1 {
        for (i, row) in data.chunks_mut(row_len).enumerate() {
            f(i, row);
        }
        return;
    }
    let rows_per_block = n_rows.div_ceil(threads);
    let inner = nested_budget(budget, threads);
    std::thread::scope(|s| {
        for (b, block) in data.chunks_mut(rows_per_block * row_len).enumerate() {
            let f = &f;
            s.spawn(move || {
                let _guard = OverrideGuard::install(Some(inner));
                let row0 = b * rows_per_block;
                for (j, row) in block.chunks_mut(row_len).enumerate() {
                    f(row0 + j, row);
                }
            });
        }
    });
}

/// Runs two closures, potentially on different threads, returning both
/// results.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    let budget = max_threads();
    if budget <= 1 {
        return (a(), b());
    }
    let inner = nested_budget(budget, 2);
    std::thread::scope(|s| {
        let hb = s.spawn(move || {
            let _guard = OverrideGuard::install(Some(inner));
            b()
        });
        let ra = {
            // The caller-side closure gets its half of the budget too, so a
            // nested region under `a` cannot exceed the configured total.
            let _guard = OverrideGuard::install(Some(inner));
            a()
        };
        (ra, hb.join().expect("joined task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_matches_serial_for_every_thread_count() {
        let serial: Vec<f64> = (0..57).map(|i| (i as f64).sin()).collect();
        for t in [1usize, 2, 3, 8, 64] {
            let par = with_threads(t, || parallel_map(57, |i| (i as f64).sin()));
            assert_eq!(par, serial, "thread count {t}");
        }
    }

    #[test]
    fn row_blocks_cover_everything_once() {
        let mut data = vec![0u32; 9 * 4];
        for t in [1usize, 2, 5, 16] {
            data.iter_mut().for_each(|v| *v = 0);
            with_threads(t, || {
                for_each_row_mut(&mut data, 4, |i, row| {
                    for (j, v) in row.iter_mut().enumerate() {
                        *v += (i * 4 + j) as u32 + 1;
                    }
                });
            });
            let want: Vec<u32> = (1..=36).collect();
            assert_eq!(data, want, "thread count {t}");
        }
    }

    #[test]
    fn with_threads_is_scoped_and_workers_split_the_budget() {
        assert!(max_threads() >= 1);
        with_threads(3, || {
            assert_eq!(max_threads(), if cfg!(feature = "parallel") { 3 } else { 1 });
            // Workers observe the budget divided across the region, so
            // nested regions cannot oversubscribe the configured total.
            let seen = parallel_map(3, |_| max_threads());
            for s in seen {
                assert_eq!(s, 1);
            }
        });
        with_threads(8, || {
            let seen = parallel_map(2, |_| max_threads());
            for s in seen {
                assert_eq!(s, if cfg!(feature = "parallel") { 4 } else { 1 });
            }
        });
    }

    #[test]
    fn override_restored_after_worker_panic() {
        if !cfg!(feature = "parallel") {
            return;
        }
        let before = max_threads();
        let result = std::panic::catch_unwind(|| {
            with_threads(2, || {
                if max_threads() == 2 {
                    panic!("boom");
                }
            })
        });
        assert!(result.is_err());
        assert_eq!(max_threads(), before, "override must unwind with the scope");
    }

    #[test]
    fn join_returns_both_and_splits_the_budget() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
        with_threads(8, || {
            let (ba, bb) = join(max_threads, max_threads);
            let want = if cfg!(feature = "parallel") { 4 } else { 1 };
            assert_eq!(ba, want, "caller-side closure must not keep the full budget");
            assert_eq!(bb, want);
        });
    }

    #[test]
    fn empty_and_single_item_maps() {
        assert!(parallel_map(0, |i| i).is_empty());
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
        assert_eq!(parallel_map_slice(&[10, 20], |x| x + 1), vec![11, 21]);
    }
}
