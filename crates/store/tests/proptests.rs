//! Property tests: `.flexer` round-trips are **bit-identical** for random
//! models — encode → decode → encode yields the same bytes, and decoded
//! models compute the same outputs to the bit.

use flexer_ann::{AnyIndex, FlatIndex, IvfConfig, IvfIndex, VectorIndex};
use flexer_block::BlockerState;
use flexer_graph::{Aggregation, GnnModel};
use flexer_nn::{Linear, Matrix, Mlp, MlpConfig};
use flexer_store::{Codec, Reader, Writer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Encode, decode, re-encode; assert byte identity; return the decoded
/// value.
fn roundtrip<T: Codec>(value: &T) -> T {
    let mut w = Writer::new();
    value.encode(&mut w);
    let bytes = w.into_bytes();
    let mut r = Reader::new(&bytes);
    let decoded = T::decode(&mut r).expect("decodes");
    r.finish().expect("fully consumed");
    let mut w2 = Writer::new();
    decoded.encode(&mut w2);
    assert_eq!(bytes, w2.into_bytes(), "re-encode must be byte-identical");
    decoded
}

fn pseudo_rows(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0x2545F4914F6CDD1D);
    (0..n * dim)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / u32::MAX as f32) * 4.0 - 2.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_matrices_roundtrip_bitexact(
        rows in 0usize..12,
        cols in 1usize..9,
        seed in any::<u64>(),
    ) {
        let data = pseudo_rows(rows, cols, seed);
        let m = Matrix::from_vec(rows, cols, data);
        let got = roundtrip(&m);
        prop_assert_eq!(got, m);
    }

    #[test]
    fn random_mlps_roundtrip_bitexact(
        input_dim in 1usize..8,
        hidden in 1usize..10,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(
            &mut rng,
            &MlpConfig { input_dim, hidden: vec![hidden], output_dim: 2 },
        );
        let got = roundtrip(&mlp);
        let x = Matrix::from_vec(3, input_dim, pseudo_rows(3, input_dim, seed ^ 1));
        // Forward passes agree to the bit (weights were restored exactly).
        prop_assert_eq!(got.forward(&x), mlp.forward(&x));
    }

    #[test]
    fn random_gnns_roundtrip_bitexact(
        dim in 2usize..6,
        hidden in 2usize..7,
        pooled in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let agg = if pooled { Aggregation::Pooled } else { Aggregation::RelationTyped };
        let mut rng = StdRng::seed_from_u64(seed);
        let model = GnnModel::new(&mut rng, dim, &[hidden, hidden], agg);
        let got = roundtrip(&model);
        // Weight equality checked through a forward pass on a small graph.
        let features = Matrix::from_vec(6, dim, pseudo_rows(6, dim, seed ^ 2));
        let graph = flexer_graph::MultiplexGraph::assemble(
            3,
            2,
            features,
            &[vec![vec![1], vec![0], vec![1]], vec![vec![2], vec![], vec![0]]],
        );
        let trace_got = got.forward(&graph);
        let trace_want = model.forward(&graph);
        prop_assert_eq!(trace_got.final_hidden(), trace_want.final_hidden());
    }

    #[test]
    fn random_indexes_roundtrip_bitexact(
        n in 1usize..60,
        dim in 1usize..5,
        flat in any::<bool>(),
        nlist in 1usize..6,
        seed in any::<u64>(),
    ) {
        let rows = pseudo_rows(n, dim, seed);
        let index = if flat {
            AnyIndex::Flat(FlatIndex::from_rows(dim, &rows))
        } else {
            AnyIndex::Ivf(IvfIndex::build(
                dim,
                &rows,
                IvfConfig { nlist, train_iters: 5, seed, ..Default::default() },
            ))
        };
        let got = roundtrip(&index);
        prop_assert_eq!(got.len(), n);
        let hits_a = got.search(&rows[0..dim], 5);
        let hits_b = index.search(&rows[0..dim], 5);
        prop_assert_eq!(hits_a, hits_b);
    }

    #[test]
    fn random_blocker_states_roundtrip_bitexact(
        titles in prop::collection::vec("[a-z ]{0,14}", 0..24),
        variant in 0u8..3,
    ) {
        use flexer_types::{AnnBlockerConfig, CandidateGenConfig, NGramBlockerConfig};
        let config = match variant {
            0 => CandidateGenConfig::Exhaustive,
            1 => CandidateGenConfig::NGram(NGramBlockerConfig {
                q: 3,
                min_shared: 1,
                max_bucket: 8,
            }),
            _ => CandidateGenConfig::Ann(AnnBlockerConfig { q: 3, dim: 16, k: 4 }),
        };
        let state = BlockerState::build(&config, titles.iter().map(|t| t.as_str()));
        let got = roundtrip(&state);
        prop_assert_eq!(&got, &state);
        // Decoded state answers candidate queries identically.
        if let Some(title) = titles.first() {
            prop_assert_eq!(got.candidates(title), state.candidates(title));
        }
    }

    /// Shard-aware frames round-trip bit-exactly, one shard decodes
    /// without the rest, and the reassembled sharded blocker answers
    /// candidate queries identically — for every backend and shard count.
    #[test]
    fn random_shard_frames_roundtrip_bitexact(
        titles in prop::collection::vec("[a-z ]{0,14}", 0..24),
        variant in 0u8..3,
        n_shards in 1usize..6,
    ) {
        use flexer_block::ShardedBlocker;
        use flexer_store::ShardFrames;
        use flexer_types::{AnnBlockerConfig, CandidateGenConfig, NGramBlockerConfig, ShardConfig};
        let config = match variant {
            0 => CandidateGenConfig::Exhaustive,
            1 => CandidateGenConfig::NGram(NGramBlockerConfig {
                q: 3,
                min_shared: 1,
                max_bucket: 8,
            }),
            _ => CandidateGenConfig::Ann(AnnBlockerConfig { q: 3, dim: 16, k: 4 }),
        };
        let blocker =
            ShardedBlocker::build(&config, ShardConfig::of(n_shards), titles.iter().map(|t| t.as_str()));
        let frames = ShardFrames::from_blocker(&blocker);
        let got = roundtrip(&frames);
        prop_assert_eq!(&got, &frames);
        let decoded = got.decode_all().expect("frames reassemble");
        prop_assert_eq!(&decoded, &blocker);
        for s in 0..n_shards {
            let (members, state) = got.decode_shard(s).expect("single shard decodes");
            prop_assert_eq!(members.as_slice(), &blocker.members()[s][..]);
            prop_assert_eq!(&state, &blocker.shards()[s]);
        }
        if let Some(title) = titles.first() {
            prop_assert_eq!(decoded.candidates(title), blocker.candidates(title));
        }
    }

    #[test]
    fn random_linears_with_extreme_values_roundtrip(
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut linear = Linear::new(&mut rng, 3, 2);
        // Inject values whose bit patterns are easy to corrupt in decimal
        // round-trips; the binary format must keep them exact.
        linear.w.set(0, 0, f32::MIN_POSITIVE);
        linear.w.set(1, 1, -0.0);
        linear.b[0] = f32::MAX;
        let got = roundtrip(&linear);
        prop_assert_eq!(got.w.get(0, 0).to_bits(), f32::MIN_POSITIVE.to_bits());
        prop_assert_eq!(got.w.get(1, 1).to_bits(), (-0.0f32).to_bits());
        prop_assert_eq!(got.b[0].to_bits(), f32::MAX.to_bits());
    }
}
