//! Corrupt-input property tests: **no input, however mangled, makes the
//! store panic** — `unseal`, full `ModelSnapshot` decoding and the wire
//! protocol all return typed errors on truncation, bit flips, forged
//! length fields (including `u64::MAX`) and arbitrary byte soup.
//!
//! Two corruption layers are exercised deliberately:
//!
//! * **Framing-level** mutations of sealed bytes — mostly caught by the
//!   length bounds and the FNV checksum before any codec runs;
//! * **Payload-level** mutations that are *re-sealed* with a fresh
//!   checksum — these reach the codecs themselves, so every decoded
//!   count, length and tag must hold its own against hostile values
//!   (`Reader::get_count` bounding pre-allocations, checked products,
//!   tag validation).

use flexer_ann::{AnyIndex, FlatIndex};
use flexer_block::BlockerState;
use flexer_graph::{Aggregation, GnnModel, MultiplexGraph, TrainedGnn};
use flexer_matcher::summarize::DfTable;
use flexer_matcher::{BinaryMatcher, PairFeaturizer};
use flexer_nn::{Linear, Matrix, Mlp, MlpConfig};
use flexer_store::{
    decode_frame, frame_message, seal, seal_frame, unseal, unseal_frame, Codec, ModelSnapshot,
    Writer,
};
use flexer_types::{
    CandidateGenConfig, Intent, IntentSet, LabelMatrix, MatchTarget, NGramBlockerConfig,
    RankedMatch, ResolveResponse, RouterRequest, RouterResponse, ShardRequest, ShardResponse,
    WireCandidates, WireQuery,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A minimal but fully valid snapshot (passes `ModelSnapshot::validate`):
/// one intent, two records, one pair, consistent dims throughout.
fn tiny_snapshot() -> ModelSnapshot {
    let mut rng = StdRng::seed_from_u64(7);
    let dim = 3;
    let records = vec!["acme anvil 10kg".to_string(), "acme anvil ten kg".to_string()];
    let graph = MultiplexGraph::assemble(
        1,
        1,
        Matrix::from_vec(1, dim, vec![0.25, -1.5, 2.0]),
        &[vec![vec![]]],
    );
    let blocker = BlockerState::build(
        &CandidateGenConfig::NGram(NGramBlockerConfig::default()),
        records.iter().map(|r| r.as_str()),
    );
    ModelSnapshot {
        intents: IntentSet::new(vec![Intent::named(0, "Eq.")]),
        k: 1,
        records,
        pairs: vec![(0, 1)],
        featurizer: PairFeaturizer::new(16),
        df: DfTable::build(std::iter::empty()),
        matchers: vec![BinaryMatcher::from_parts(
            Linear::new(&mut rng, 8, 4),
            Mlp::new(&mut rng, &MlpConfig { input_dim: 4, hidden: vec![4], output_dim: 2 }),
            0.5,
        )],
        graph,
        trained: vec![TrainedGnn {
            model: GnnModel::new(&mut rng, dim, &[4, 4], Aggregation::Pooled),
            best_valid_f1: 0.5,
            scores: vec![0.75],
            preds: vec![true],
            epochs_run: 1,
        }],
        predictions: LabelMatrix::zeros(1, 1),
        indexes: vec![AnyIndex::Flat(FlatIndex::from_rows(dim, &[0.25, -1.5, 2.0]))],
        blocker,
        sharding: None,
    }
}

/// Sealed snapshot bytes, built once per test binary.
fn sealed_snapshot() -> &'static Vec<u8> {
    static SHARED: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    SHARED.get_or_init(|| {
        let bytes = tiny_snapshot().to_bytes();
        // The fixture itself must be valid, or every mutation test below
        // would vacuously pass on an already-broken input.
        ModelSnapshot::from_bytes(&bytes).expect("fixture snapshot round-trips");
        bytes
    })
}

/// The raw (unsealed) snapshot payload.
fn snapshot_payload() -> &'static Vec<u8> {
    static SHARED: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    SHARED.get_or_init(|| {
        let mut w = Writer::new();
        tiny_snapshot().encode(&mut w);
        w.into_bytes()
    })
}

/// A wire frame with every interesting shape nested inside (Ok/Err
/// outcomes, floats, strings, nested vectors).
fn sample_frame() -> Vec<u8> {
    frame_message(&RouterResponse::ResolveBatch(vec![
        Ok(ResolveResponse {
            intent: 1,
            matches: vec![RankedMatch {
                target: MatchTarget::Record(3),
                score: 0.875,
                matched: true,
            }],
        }),
        Err("shard down".to_string()),
    ]))
}

/// Every decode entry point a hostile peer can reach, applied to one
/// byte string. Results are discarded — the property is "returns, never
/// panics"; mutated bytes may legitimately still decode (e.g. cancelled
/// double flips).
fn decode_everything(bytes: &[u8]) {
    let _ = unseal(bytes);
    let _ = ModelSnapshot::from_bytes(bytes);
    let _ = unseal_frame(bytes);
    let _ = decode_frame::<ShardRequest>(bytes);
    let _ = decode_frame::<ShardResponse>(bytes);
    let _ = decode_frame::<RouterRequest>(bytes);
    let _ = decode_frame::<RouterResponse>(bytes);
    let _ = flexer_store::read_message::<RouterResponse>(&mut &bytes[..]);
}

/// The codec layer alone, behind a freshly computed (valid) checksum, so
/// corruption reaches the decoders instead of dying at the frame check.
fn decode_resealed(payload: &[u8]) {
    let _ = ModelSnapshot::from_bytes(&seal(payload));
    let resealed = seal_frame(payload);
    let _ = decode_frame::<ShardRequest>(&resealed);
    let _ = decode_frame::<ShardResponse>(&resealed);
    let _ = decode_frame::<RouterRequest>(&resealed);
    let _ = decode_frame::<RouterResponse>(&resealed);
}

fn mutate(bytes: &[u8], flips: &[(usize, u8)], stamp: &Option<(usize, u64)>) -> Vec<u8> {
    let mut out = bytes.to_vec();
    for &(idx, bit) in flips {
        let idx = idx % out.len();
        out[idx] ^= 1 << (bit % 8);
    }
    if let Some((at, value)) = stamp {
        // Overwrite 8 bytes anywhere with an arbitrary u64 — the shape of
        // every forged length/count attack, aimed at arbitrary fields.
        let at = at % out.len().saturating_sub(7).max(1);
        let end = (at + 8).min(out.len());
        out[at..end].copy_from_slice(&value.to_le_bytes()[..end - at]);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating a valid sealed snapshot anywhere yields an error.
    #[test]
    fn truncated_snapshots_error_cleanly(cut in 0usize..1 << 16) {
        let bytes = sealed_snapshot();
        let cut = cut % bytes.len();
        prop_assert!(ModelSnapshot::from_bytes(&bytes[..cut]).is_err());
        prop_assert!(unseal(&bytes[..cut]).is_err());
    }

    /// Bit flips and arbitrary 8-byte overwrites (= forged length/count
    /// fields, including `u64::MAX`) never panic any decode entry point.
    #[test]
    fn mutated_snapshots_never_panic(
        flips in prop::collection::vec((0usize..1 << 16, 0u8..8), 0..4),
        stamp_at in 0usize..1 << 16,
        stamp_value in any::<u64>(),
        use_stamp in any::<bool>(),
    ) {
        let stamp = use_stamp.then_some((stamp_at, stamp_value));
        let mutated = mutate(sealed_snapshot(), &flips, &stamp);
        decode_everything(&mutated);
    }

    /// The same mutations on the *payload*, re-sealed with a fresh
    /// checksum so they reach the codecs — counts, tags, nested lengths.
    #[test]
    fn mutated_payloads_behind_valid_checksums_never_panic(
        flips in prop::collection::vec((0usize..1 << 16, 0u8..8), 0..4),
        stamp_at in 0usize..1 << 16,
        stamp_value in any::<u64>(),
        use_stamp in any::<bool>(),
        cut in 0usize..1 << 16,
        use_cut in any::<bool>(),
    ) {
        let stamp = use_stamp.then_some((stamp_at, stamp_value));
        let mut payload = mutate(snapshot_payload(), &flips, &stamp);
        if use_cut {
            payload.truncate(cut % (payload.len() + 1));
        }
        decode_resealed(&payload);
    }

    /// Wire frames under the same treatment: framing-level mutations and
    /// re-sealed payload mutations, across every message type.
    #[test]
    fn mutated_wire_frames_never_panic(
        flips in prop::collection::vec((0usize..1 << 12, 0u8..8), 0..4),
        stamp_at in 0usize..1 << 12,
        stamp_value in any::<u64>(),
        use_stamp in any::<bool>(),
        cut in 0usize..1 << 12,
        use_cut in any::<bool>(),
    ) {
        let stamp = use_stamp.then_some((stamp_at, stamp_value));
        let frame = sample_frame();
        let mut mutated = mutate(&frame, &flips, &stamp);
        if use_cut {
            mutated.truncate(cut % (mutated.len() + 1));
        }
        decode_everything(&mutated);
        // Payload-level: strip the header + checksum, mutate, re-seal.
        let payload_end = frame.len() - 8;
        let payload = mutate(&frame[20..payload_end], &flips, &stamp);
        decode_resealed(&payload);
    }

    /// Arbitrary byte soup — no structure at all — never panics.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        decode_everything(&bytes);
        decode_resealed(&bytes);
    }
}

/// The historical `unseal` overflow, pinned deterministically: a length
/// field of `u64::MAX` (and friends) must yield `Truncated`, not a wrap
/// and an out-of-bounds slice.
#[test]
fn forged_length_fields_error_on_every_entry_point() {
    let mut snapshot = sealed_snapshot().clone();
    let mut frame = sample_frame();
    for forged in [u64::MAX, u64::MAX - 7, u64::MAX / 2, 1 << 60, 1 << 32] {
        snapshot[12..20].copy_from_slice(&forged.to_le_bytes());
        frame[12..20].copy_from_slice(&forged.to_le_bytes());
        assert!(unseal(&snapshot).is_err(), "unseal len {forged:#x}");
        assert!(ModelSnapshot::from_bytes(&snapshot).is_err(), "snapshot len {forged:#x}");
        assert!(unseal_frame(&frame).is_err(), "frame len {forged:#x}");
        assert!(
            flexer_store::read_message::<RouterResponse>(&mut &frame[..]).is_err(),
            "stream len {forged:#x}"
        );
    }
}

/// Queries and candidate payloads with hostile *values* (not just
/// hostile framing): `u64::MAX` gram hashes, non-finite distances —
/// decode fine and stay inert data.
#[test]
fn hostile_values_decode_as_plain_data() {
    let q = ShardRequest::Query(WireQuery::Grams(vec![u64::MAX, 0, 1]));
    assert_eq!(decode_frame::<ShardRequest>(&frame_message(&q)).unwrap(), q);
    let c = ShardResponse::Candidates(WireCandidates::Hits(vec![
        (f32::NAN, 1),
        (f32::INFINITY, 2),
        (f32::NEG_INFINITY, u32::MAX),
    ]));
    // NaN != NaN, so compare the re-encoding instead.
    let decoded = decode_frame::<ShardResponse>(&frame_message(&c)).unwrap();
    assert_eq!(frame_message(&decoded), frame_message(&c));
}
