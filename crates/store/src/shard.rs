//! [`ShardFrames`] — the shard-aware snapshot section (format v3).
//!
//! A sharded deployment should not have to materialize every shard's
//! blocker state to boot one shard server. The sharded blocker therefore
//! serializes as *length-prefixed per-shard frames*: each frame is a
//! self-contained byte blob holding one shard's member list (global record
//! ids) and its [`BlockerState`]. Loading a snapshot copies the frame
//! bytes but decodes nothing; [`ShardFrames::decode_shard`] materializes
//! exactly one shard on demand, and [`ShardFrames::decode_all`] rebuilds
//! the full [`ShardedBlocker`] (with cross-shard partition validation) for
//! single-process serving.
//!
//! Frames are canonical — produced by the same sorted-bucket encoders as
//! the monolithic blocker codec — so `save → load → save` stays
//! byte-identical through any number of round trips.

use crate::codec::Codec;
use crate::format::{Reader, StoreError, Writer};
use flexer_block::{BlockerState, ShardedBlocker};
use flexer_types::ShardConfig;

/// The undecoded per-shard frames of a sharded blocker (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFrames {
    n_records: usize,
    frames: Vec<Vec<u8>>,
}

impl ShardFrames {
    /// Encodes a sharded blocker into per-shard frames.
    pub fn from_blocker(blocker: &ShardedBlocker) -> Self {
        let frames = blocker
            .shards()
            .iter()
            .zip(blocker.members())
            .map(|(state, members)| {
                let mut w = Writer::new();
                w.put_u32_slice(members);
                state.encode(&mut w);
                w.into_bytes()
            })
            .collect();
        Self { n_records: blocker.len(), frames }
    }

    /// The shard configuration these frames partition under.
    pub fn config(&self) -> ShardConfig {
        ShardConfig::of(self.frames.len())
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.frames.len()
    }

    /// Total records across all shards.
    pub fn n_records(&self) -> usize {
        self.n_records
    }

    /// The raw frame of one shard (size accounting, shipping a single
    /// shard over the wire).
    pub fn frame_bytes(&self, shard: usize) -> &[u8] {
        &self.frames[shard]
    }

    /// Decodes **one** shard — its global-id member list and blocker
    /// state — without touching any other frame. This is the lazy-loading
    /// path a shard server boots through.
    pub fn decode_shard(&self, shard: usize) -> Result<(Vec<u32>, BlockerState), StoreError> {
        let frame = self.frames.get(shard).ok_or_else(|| {
            StoreError::Malformed(format!(
                "shard {shard} out of range ({} frames)",
                self.frames.len()
            ))
        })?;
        let mut r = Reader::new(frame);
        let members = r.get_u32_slice()?;
        let state = BlockerState::decode(&mut r)?;
        r.finish()?;
        Ok((members, state))
    }

    /// Decodes every frame and reassembles the full sharded blocker,
    /// validating that the members partition `0..n_records` exactly.
    pub fn decode_all(&self) -> Result<ShardedBlocker, StoreError> {
        let mut shards = Vec::with_capacity(self.frames.len());
        let mut members = Vec::with_capacity(self.frames.len());
        for s in 0..self.frames.len() {
            let (m, state) = self.decode_shard(s)?;
            members.push(m);
            shards.push(state);
        }
        ShardedBlocker::from_parts(self.config(), shards, members, self.n_records)
            .map_err(StoreError::Malformed)
    }
}

impl Codec for ShardFrames {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.n_records);
        w.put_usize(self.frames.len());
        for frame in &self.frames {
            w.put_bytes(frame);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let n_records = r.get_usize()?;
        // Each frame is at least its own 8-byte length prefix, so the
        // count is bounded by the remaining payload before the config
        // validation (which caps it at 65536 shards anyway).
        let n_shards = r.get_count(8)?;
        ShardConfig::of(n_shards).validate().map_err(StoreError::Malformed)?;
        let mut frames = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            frames.push(r.get_bytes()?);
        }
        Ok(Self { n_records, frames })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_types::{CandidateGenConfig, NGramBlockerConfig};

    fn sample_blocker(n_shards: usize) -> ShardedBlocker {
        let titles: Vec<String> = (0..30).map(|i| format!("gadget model number {i}")).collect();
        ShardedBlocker::build(
            &CandidateGenConfig::NGram(NGramBlockerConfig::default()),
            ShardConfig::of(n_shards),
            titles.iter().map(|t| t.as_str()),
        )
    }

    #[test]
    fn frames_roundtrip_bit_exactly() {
        let blocker = sample_blocker(3);
        let frames = ShardFrames::from_blocker(&blocker);
        let mut w = Writer::new();
        frames.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = ShardFrames::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, frames);
        let mut w2 = Writer::new();
        decoded.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "re-encode must be byte-identical");
        assert_eq!(decoded.decode_all().unwrap(), blocker);
    }

    #[test]
    fn single_shard_decodes_without_the_rest() {
        let blocker = sample_blocker(4);
        let frames = ShardFrames::from_blocker(&blocker);
        for s in 0..4 {
            let (members, state) = frames.decode_shard(s).unwrap();
            assert_eq!(members.as_slice(), &blocker.members()[s][..]);
            assert_eq!(&state, &blocker.shards()[s]);
        }
        assert!(frames.decode_shard(4).is_err());
    }

    #[test]
    fn corrupt_frame_fails_cleanly_and_lazily() {
        let blocker = sample_blocker(3);
        let mut frames = ShardFrames::from_blocker(&blocker);
        // Truncate shard 1's frame: decoding shard 0 still works, shard 1
        // and the full reassembly fail with a typed error.
        let cut = frames.frames[1].len() / 2;
        frames.frames[1].truncate(cut);
        assert!(frames.decode_shard(0).is_ok());
        assert!(frames.decode_shard(1).is_err());
        assert!(frames.decode_all().is_err());
    }

    #[test]
    fn partition_violations_are_rejected_on_reassembly() {
        let blocker = sample_blocker(2);
        let other = {
            let titles: Vec<String> = (0..10).map(|i| format!("other corpus {i}")).collect();
            ShardedBlocker::build(
                &CandidateGenConfig::NGram(NGramBlockerConfig::default()),
                ShardConfig::of(2),
                titles.iter().map(|t| t.as_str()),
            )
        };
        // Frames from one blocker with another's record count cannot
        // reassemble: members no longer partition 0..n_records.
        let mut frames = ShardFrames::from_blocker(&blocker);
        frames.n_records = other.len();
        assert!(frames.decode_all().is_err());
    }
}
