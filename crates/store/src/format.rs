//! The `.flexer` container: a little-endian payload framed by a magic
//! string, a format version, the payload length and a trailing FNV-1a
//! checksum.
//!
//! ```text
//! ┌────────────┬─────────────┬──────────────────┬──────────┬──────────────┐
//! │ "FLEXSNAP" │ version u32 │ payload_len u64  │ payload  │ checksum u64 │
//! └────────────┴─────────────┴──────────────────┴──────────┴──────────────┘
//! ```
//!
//! The environment is offline (no serde), so the payload is produced by the
//! hand-rolled [`Writer`]/[`Reader`] pair below — the same style as the
//! `crates/compat` shims. All multi-byte values are little-endian; floats
//! are stored as their raw IEEE-754 bits, so round-trips are bit-exact.

use std::fmt;

/// Leading magic bytes of every `.flexer` file.
pub const MAGIC: [u8; 8] = *b"FLEXSNAP";

/// Current format version. Bump on any layout change; readers reject
/// versions they do not understand instead of mis-parsing them.
/// History: 1 = PR 2 layout; 2 = candidate-generation tier (the snapshot
/// carries the serving blocker state after the ANN indexes); 3 =
/// shard-aware snapshots (an optional sharded-blocker section of
/// length-prefixed per-shard frames follows the blocker, so shard servers
/// can decode their own shard without materializing the rest).
pub const VERSION: u32 = 3;

/// Everything that can go wrong reading a snapshot.
#[derive(Debug)]
pub enum StoreError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file declares a version this reader does not support.
    UnsupportedVersion(u32),
    /// The buffer ended before a read completed.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The trailing checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// Bytes were left over after the payload decoded completely.
    TrailingBytes(usize),
    /// The payload decoded but its contents are inconsistent.
    Malformed(String),
    /// Filesystem error while reading or writing.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "not a .flexer snapshot (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (reader supports {VERSION})")
            }
            StoreError::Truncated { needed, available } => {
                write!(f, "snapshot truncated: needed {needed} bytes, {available} available")
            }
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot corrupted: stored checksum {stored:#018x} != computed {computed:#018x}"
            ),
            StoreError::TrailingBytes(n) => {
                write!(f, "snapshot has {n} unexpected trailing payload bytes")
            }
            StoreError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            StoreError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// FNV-1a 64-bit over a byte slice — cheap, dependency-free corruption
/// detection (not a cryptographic integrity guarantee).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Frames a payload into a complete `.flexer` byte stream.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 12 + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out
}

/// Validates framing + checksum and returns the payload slice.
pub fn unseal(bytes: &[u8]) -> Result<&[u8], StoreError> {
    let header = MAGIC.len() + 4 + 8;
    if bytes.len() < header + 8 {
        return Err(StoreError::Truncated { needed: header + 8, available: bytes.len() });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let len64 = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    // The length field is untrusted: `header + len + 8` must not wrap (a
    // corrupt length near `u64::MAX` would otherwise slice out of bounds
    // in release builds and overflow-panic in debug builds). A valid
    // payload can never exceed the buffer, so bound it there first.
    if len64 > (bytes.len() - header - 8) as u64 {
        return Err(StoreError::Truncated {
            needed: len64.saturating_add((header + 8) as u64).min(usize::MAX as u64) as usize,
            available: bytes.len(),
        });
    }
    let len = len64 as usize;
    let total = header + len + 8;
    if bytes.len() > total {
        return Err(StoreError::TrailingBytes(bytes.len() - total));
    }
    let payload = &bytes[header..header + len];
    let stored = u64::from_le_bytes(bytes[header + len..].try_into().expect("8 bytes"));
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    Ok(payload)
}

/// Little-endian payload writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` stored as u64 (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// IEEE-754 bits of an f32 (bit-exact, NaN-preserving).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// IEEE-754 bits of an f64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Strict boolean (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed raw byte blob (nested frames).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed f32 slice.
    pub fn put_f32_slice(&mut self, vs: &[f32]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Length-prefixed u32 slice.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Length-prefixed usize slice (stored as u64s).
    pub fn put_usize_slice(&mut self, vs: &[usize]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u64(v as u64);
        }
    }

    /// Length-prefixed bool slice (one byte per value).
    pub fn put_bool_slice(&mut self, vs: &[bool]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u8(v as u8);
        }
    }
}

/// Little-endian payload reader over a borrowed buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reader over a full payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte was consumed.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StoreError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated { needed: n, available: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// A u64 narrowed to usize; errors if it cannot fit.
    pub fn get_usize(&mut self) -> Result<usize, StoreError> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| StoreError::Malformed(format!("length {v} exceeds this platform")))
    }

    /// A length prefix for elements of `elem_size` bytes, bounds-checked
    /// against the remaining buffer *before* any allocation, so corrupted
    /// length fields fail cleanly instead of attempting huge allocations.
    fn get_len(&mut self, elem_size: usize) -> Result<usize, StoreError> {
        let n = self.get_usize()?;
        let needed = n.checked_mul(elem_size).ok_or_else(|| {
            StoreError::Malformed(format!("length {n} × {elem_size} bytes overflows"))
        })?;
        if needed > self.remaining() {
            return Err(StoreError::Truncated { needed, available: self.remaining() });
        }
        Ok(n)
    }

    /// A length prefix for a sequence whose elements each occupy **at
    /// least** `min_elem_bytes` of encoded payload, bounds-checked against
    /// the remaining buffer. This is the pre-allocation guard for
    /// variable-size elements (codec sequences): a count that could not
    /// possibly fit in the remaining bytes is rejected *before* any
    /// `Vec::with_capacity`, so a corrupt count field can never trigger a
    /// huge allocation or OOM abort. Callers pass a conservative lower
    /// bound on the encoded element size (1 is always sound).
    pub fn get_count(&mut self, min_elem_bytes: usize) -> Result<usize, StoreError> {
        let n = self.get_usize()?;
        let needed = n.checked_mul(min_elem_bytes.max(1)).ok_or_else(|| {
            StoreError::Malformed(format!("count {n} × {min_elem_bytes} bytes overflows"))
        })?;
        if needed > self.remaining() {
            return Err(StoreError::Truncated { needed, available: self.remaining() });
        }
        Ok(n)
    }

    /// IEEE-754 f32.
    pub fn get_f32(&mut self) -> Result<f32, StoreError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// IEEE-754 f64.
    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Strict boolean: any byte other than 0/1 is malformed.
    pub fn get_bool(&mut self) -> Result<bool, StoreError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StoreError::Malformed(format!("invalid boolean byte {b}"))),
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StoreError> {
        let n = self.get_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StoreError::Malformed(format!("invalid UTF-8 string: {e}")))
    }

    /// Length-prefixed raw byte blob (nested frames).
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, StoreError> {
        let n = self.get_len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Length-prefixed f32 slice.
    pub fn get_f32_slice(&mut self) -> Result<Vec<f32>, StoreError> {
        let n = self.get_len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f32()?);
        }
        Ok(out)
    }

    /// Length-prefixed u32 slice.
    pub fn get_u32_slice(&mut self) -> Result<Vec<u32>, StoreError> {
        let n = self.get_len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_u32()?);
        }
        Ok(out)
    }

    /// Length-prefixed usize slice.
    pub fn get_usize_slice(&mut self) -> Result<Vec<usize>, StoreError> {
        let n = self.get_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_usize()?);
        }
        Ok(out)
    }

    /// Length-prefixed bool slice.
    pub fn get_bool_slice(&mut self) -> Result<Vec<bool>, StoreError> {
        let n = self.get_len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_bool()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEADBEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(42);
        w.put_f32(-0.0);
        w.put_f64(std::f64::consts::PI);
        w.put_bool(true);
        w.put_str("intención");
        w.put_f32_slice(&[1.5, -2.5, f32::MIN_POSITIVE]);
        w.put_u32_slice(&[1, 2, 3]);
        w.put_usize_slice(&[9, 0]);
        w.put_bool_slice(&[true, false, true]);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_usize().unwrap(), 42);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "intención");
        assert_eq!(r.get_f32_slice().unwrap(), vec![1.5, -2.5, f32::MIN_POSITIVE]);
        assert_eq!(r.get_u32_slice().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_usize_slice().unwrap(), vec![9, 0]);
        assert_eq!(r.get_bool_slice().unwrap(), vec![true, false, true]);
        r.finish().unwrap();
    }

    #[test]
    fn nan_bits_preserved() {
        let weird = f32::from_bits(0x7FC0_1234); // a payloaded NaN
        let mut w = Writer::new();
        w.put_f32(weird);
        let bytes = w.into_bytes();
        let got = Reader::new(&bytes).get_f32().unwrap();
        assert_eq!(got.to_bits(), weird.to_bits());
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let payload = b"hello snapshot".to_vec();
        let sealed = seal(&payload);
        assert_eq!(unseal(&sealed).unwrap(), payload.as_slice());
    }

    #[test]
    fn corruption_detected() {
        let sealed = seal(b"payload bytes");
        // Flip one payload bit.
        let mut bad = sealed.clone();
        bad[MAGIC.len() + 12 + 3] ^= 0x40;
        assert!(matches!(unseal(&bad), Err(StoreError::ChecksumMismatch { .. })));
        // Truncate.
        assert!(matches!(unseal(&sealed[..sealed.len() - 3]), Err(StoreError::Truncated { .. })));
        // Bad magic.
        let mut bad = sealed.clone();
        bad[0] = b'X';
        assert!(matches!(unseal(&bad), Err(StoreError::BadMagic)));
        // Future version.
        let mut bad = sealed.clone();
        bad[8] = 99;
        assert!(matches!(unseal(&bad), Err(StoreError::UnsupportedVersion(99))));
        // Trailing garbage.
        let mut bad = sealed;
        bad.push(0);
        assert!(matches!(unseal(&bad), Err(StoreError::TrailingBytes(1))));
    }

    #[test]
    fn corrupt_length_field_cannot_overflow() {
        // A sealed frame whose length field is forged to huge values must
        // report truncation, never wrap `header + len + 8` into an
        // out-of-bounds slice (release) or arithmetic overflow (debug).
        let sealed = seal(b"payload bytes");
        for forged in [u64::MAX, u64::MAX - 7, u64::MAX / 2, sealed.len() as u64, 1 << 60] {
            let mut bad = sealed.clone();
            bad[12..20].copy_from_slice(&forged.to_le_bytes());
            assert!(
                matches!(unseal(&bad), Err(StoreError::Truncated { .. })),
                "forged length {forged} must fail as truncated"
            );
        }
    }

    #[test]
    fn count_prefix_is_bounded_by_remaining_bytes() {
        let mut w = Writer::new();
        w.put_usize(3);
        w.put_u32(7); // only 4 bytes of element payload follow
        let bytes = w.into_bytes();
        // 3 elements of >= 4 bytes each cannot fit in 4 remaining bytes.
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_count(4), Err(StoreError::Truncated { .. })));
        // …but 3 elements of >= 1 byte could.
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_count(1).unwrap(), 3);
        // Overflowing count × size is malformed, not a panic.
        let mut w = Writer::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_count(16),
            Err(StoreError::Malformed(_)) | Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_length_fields_fail_before_allocating() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX / 2); // an absurd element count
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_f32_slice(),
            Err(StoreError::Truncated { .. }) | Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.get_bool(), Err(StoreError::Malformed(_))));
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF29CE484222325);
        assert_eq!(fnv1a64(b"a"), 0xAF63DC4C8601EC8C);
    }
}
