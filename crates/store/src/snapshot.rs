//! [`ModelSnapshot`] — everything a resolution service needs to answer
//! intent queries without retraining, in one `.flexer` file.
//!
//! A snapshot captures the three stages of the paper end to end:
//!
//! * **Representation** (§4.1.1): the per-intent binary matchers (trunk +
//!   head weights), the shared featurizer configuration and the corpus
//!   document-frequency table — enough to embed *new* record pairs into
//!   each intent's latent space at query time;
//! * **Graph** (§4.1): the multiplex intents graph (stacked features +
//!   intra/inter CSR adjacencies) plus one ANN index per intent layer over
//!   the initial representations, so new nodes can be wired to their k-NN
//!   incrementally;
//! * **Prediction** (§4.2–4.3): the P trained per-intent GNNs with their
//!   batch scores/predictions — the transductive ground truth the serving
//!   tier reproduces exactly.
//!
//! Round-trips are bit-exact: `save → load → save` produces identical
//! bytes (floats are stored as raw IEEE-754 bits; hash-backed tables are
//! serialized in sorted order).

use crate::codec::Codec;
use crate::format::{seal, unseal, Reader, StoreError, Writer};
use crate::shard::ShardFrames;
use flexer_ann::{AnyIndex, VectorIndex};
use flexer_block::BlockerState;
use flexer_graph::{MultiplexGraph, TrainedGnn};
use flexer_matcher::summarize::DfTable;
use flexer_matcher::{BinaryMatcher, PairFeaturizer};
use flexer_types::{IntentSet, LabelMatrix};
use std::path::Path;

/// Which ANN index variant an exporter builds per intent layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Exact flat L2 scan (the paper's default).
    Flat,
    /// Inverted-file approximate search with the given parameters.
    Ivf(flexer_ann::IvfConfig),
}

/// A complete, self-contained trained-model snapshot.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// The intent set `Π` (names + the equivalence flag).
    pub intents: IntentSet,
    /// Intra-layer k-NN degree used when the graph was built — the same
    /// `k` the serving tier uses to wire new nodes.
    pub k: usize,
    /// Corpus record titles, id order (the matching phase consumes titles
    /// only, like the paper's setup).
    pub records: Vec<String>,
    /// Candidate pair record refs `(a, b)`, pair-id order.
    pub pairs: Vec<(u32, u32)>,
    /// Featurizer configuration shared by every matcher.
    pub featurizer: PairFeaturizer,
    /// Corpus document frequencies (for query-time summarization).
    pub df: DfTable,
    /// One trained binary matcher per intent.
    pub matchers: Vec<BinaryMatcher>,
    /// The multiplex intents graph over the training corpus.
    pub graph: MultiplexGraph,
    /// One trained GNN per intent, with its batch scores/predictions.
    pub trained: Vec<TrainedGnn>,
    /// The batch per-intent predictions (pairs × intents).
    pub predictions: LabelMatrix,
    /// One ANN index per intent layer over the initial representations.
    pub indexes: Vec<AnyIndex>,
    /// The candidate-generation tier: the incremental blocker state over
    /// the corpus records, so a serving tier resumes blocking exactly
    /// where the exporter left off ([`BlockerState::Exhaustive`] for the
    /// explicit all-pairs fallback).
    pub blocker: BlockerState,
    /// Shard-aware layout (format v3): when present, the blocker tier is
    /// partitioned into per-shard frames instead of the monolithic
    /// `blocker` field (which must then be the [`BlockerState::Exhaustive`]
    /// sentinel — one canonical representation keeps round-trips
    /// byte-identical). Shard servers decode only their own frame; an
    /// unsharded service merges the frames back on load.
    pub sharding: Option<ShardFrames>,
}

impl ModelSnapshot {
    /// Cross-field consistency checks (beyond what each codec validates).
    pub fn validate(&self) -> Result<(), StoreError> {
        let p = self.intents.len();
        let n = self.pairs.len();
        let fail = |msg: String| Err(StoreError::Malformed(msg));
        if p == 0 {
            return fail("snapshot declares no intents".into());
        }
        if self.matchers.len() != p || self.trained.len() != p || self.indexes.len() != p {
            return fail(format!(
                "per-intent artefact counts (matchers {}, gnns {}, indexes {}) != {p} intents",
                self.matchers.len(),
                self.trained.len(),
                self.indexes.len()
            ));
        }
        if self.graph.n_layers != p {
            return fail(format!("graph has {} layers for {p} intents", self.graph.n_layers));
        }
        if self.graph.n_pairs != n {
            return fail(format!("graph covers {} pairs, snapshot lists {n}", self.graph.n_pairs));
        }
        if self.predictions.n_pairs() != n || self.predictions.n_intents() != p {
            return fail("prediction matrix shape mismatch".into());
        }
        for (i, &(a, b)) in self.pairs.iter().enumerate() {
            if a as usize >= self.records.len() || b as usize >= self.records.len() {
                return fail(format!("pair {i} references a record out of range"));
            }
        }
        for (q, index) in self.indexes.iter().enumerate() {
            if index.len() != n {
                return fail(format!("index {q} holds {} vectors for {n} pairs", index.len()));
            }
            if index.dim() != self.graph.dim {
                return fail(format!("index {q} dimensionality != graph features"));
            }
        }
        for (pi, t) in self.trained.iter().enumerate() {
            if t.scores.len() != n || t.preds.len() != n {
                return fail(format!("trained GNN {pi} scores/preds do not cover the pairs"));
            }
        }
        if !matches!(self.blocker, BlockerState::Exhaustive)
            && self.blocker.len() != self.records.len()
        {
            return fail(format!(
                "blocker indexes {} records, snapshot lists {}",
                self.blocker.len(),
                self.records.len()
            ));
        }
        if let Some(sharding) = &self.sharding {
            if !matches!(self.blocker, BlockerState::Exhaustive) {
                return fail("sharded snapshots carry the blocker only in per-shard frames".into());
            }
            if sharding.n_records() != self.records.len() {
                return fail(format!(
                    "shard frames cover {} records, snapshot lists {}",
                    sharding.n_records(),
                    self.records.len()
                ));
            }
        }
        Ok(())
    }

    /// Serializes into a framed, checksummed `.flexer` byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        seal(&w.into_bytes())
    }

    /// Deserializes and validates a `.flexer` byte stream.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let payload = unseal(bytes)?;
        let mut r = Reader::new(payload);
        let snapshot = Self::decode(&mut r)?;
        r.finish()?;
        snapshot.validate()?;
        Ok(snapshot)
    }

    /// Writes the snapshot to a `.flexer` file. Duration and byte size
    /// are recorded under `store.save` / `store.save.bytes` on the
    /// process-global recorder.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let rec = flexer_obs::global();
        let t0 = rec.is_enabled().then(std::time::Instant::now);
        let bytes = self.to_bytes();
        std::fs::write(path, &bytes)?;
        if let Some(t0) = t0 {
            rec.record_span_ns("store.save", t0.elapsed().as_nanos() as u64);
            rec.record_value("store.save.bytes", bytes.len() as u64);
        }
        Ok(())
    }

    /// Reads a snapshot from a `.flexer` file. Duration and byte size are
    /// recorded under `store.load` / `store.load.bytes` on the
    /// process-global recorder.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let rec = flexer_obs::global();
        let t0 = rec.is_enabled().then(std::time::Instant::now);
        let bytes = std::fs::read(path)?;
        let snapshot = Self::from_bytes(&bytes)?;
        if let Some(t0) = t0 {
            rec.record_span_ns("store.load", t0.elapsed().as_nanos() as u64);
            rec.record_value("store.load.bytes", bytes.len() as u64);
        }
        Ok(snapshot)
    }

    /// Number of intents `P`.
    pub fn n_intents(&self) -> usize {
        self.intents.len()
    }

    /// Number of stored candidate pairs.
    pub fn n_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Number of corpus records.
    pub fn n_records(&self) -> usize {
        self.records.len()
    }
}

impl Codec for ModelSnapshot {
    fn encode(&self, w: &mut Writer) {
        self.intents.encode(w);
        w.put_usize(self.k);
        w.put_usize(self.records.len());
        for r in &self.records {
            w.put_str(r);
        }
        w.put_usize(self.pairs.len());
        for &(a, b) in &self.pairs {
            w.put_u32(a);
            w.put_u32(b);
        }
        self.featurizer.encode(w);
        self.df.encode(w);
        self.matchers.encode(w);
        self.graph.encode(w);
        self.trained.encode(w);
        self.predictions.encode(w);
        self.indexes.encode(w);
        self.blocker.encode(w);
        self.sharding.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let intents = IntentSet::decode(r)?;
        let k = r.get_usize()?;
        // Counts are bounded against the remaining payload (records are at
        // least their 8-byte length prefix, pairs exactly 8 bytes), so a
        // corrupt count cannot pre-allocate more than the input's own size.
        let n_records = r.get_count(8)?;
        let mut records = Vec::with_capacity(n_records);
        for _ in 0..n_records {
            records.push(r.get_str()?);
        }
        let n_pairs = r.get_count(8)?;
        let mut pairs = Vec::with_capacity(n_pairs);
        for _ in 0..n_pairs {
            let a = r.get_u32()?;
            let b = r.get_u32()?;
            pairs.push((a, b));
        }
        let featurizer = PairFeaturizer::decode(r)?;
        let df = DfTable::decode(r)?;
        let matchers = Vec::<BinaryMatcher>::decode(r)?;
        let graph = MultiplexGraph::decode(r)?;
        let trained = Vec::<TrainedGnn>::decode(r)?;
        let predictions = LabelMatrix::decode(r)?;
        let indexes = Vec::<AnyIndex>::decode(r)?;
        let blocker = BlockerState::decode(r)?;
        let sharding = Option::<ShardFrames>::decode(r)?;
        Ok(Self {
            intents,
            k,
            records,
            pairs,
            featurizer,
            df,
            matchers,
            graph,
            trained,
            predictions,
            indexes,
            blocker,
            sharding,
        })
    }
}
