//! The TCP wire protocol of the networked shard deployment.
//!
//! Messages travel as self-delimiting frames with the same shape as the
//! `.flexer` container — magic, version, length, payload, FNV-1a
//! checksum — but under their own magic so a stray snapshot file can
//! never be mistaken for a protocol stream:
//!
//! ```text
//! ┌────────────┬─────────────┬─────────────────┬──────────┬──────────────┐
//! │ "FLEXWIRE" │ version u32 │ payload_len u64 │ payload  │ checksum u64 │
//! └────────────┴─────────────┴─────────────────┴──────────┴──────────────┘
//! ```
//!
//! Every byte here is **untrusted**: it arrives from a socket, not from a
//! file we wrote ourselves. The framing therefore bounds the declared
//! length twice — against [`MAX_WIRE_FRAME`] before any allocation, and
//! (in the slice-level [`unseal_frame`]) against the buffer with checked
//! arithmetic — and the payload codecs below inherit the store's hardened
//! [`Reader`] bounds ([`Reader::get_count`] caps every decoded count by
//! the bytes actually present). Corrupt input yields `Err`, never a panic
//! and never an attacker-sized allocation.
//!
//! The message vocabulary itself ([`ShardRequest`]/[`ShardResponse`],
//! [`RouterRequest`]/[`RouterResponse`]) lives in `flexer-types::wire`;
//! this module gives those types their [`Codec`] impls plus blocking
//! [`write_message`]/[`read_message`] over any `io::Write`/`io::Read`.

use crate::codec::Codec;
use crate::format::{fnv1a64, Reader, StoreError, Writer};
use flexer_types::{
    MatchTarget, RankedMatch, ResolveQuery, ResolveResponse, RouterRequest, RouterResponse,
    ShardRequest, ShardResponse, WireCandidates, WireIngestReport, WireQuery,
};
use std::fmt;
use std::io::{self, Read, Write};

/// Leading magic bytes of every wire frame.
pub const WIRE_MAGIC: [u8; 8] = *b"FLEXWIRE";

/// Wire protocol version; both ends reject anything else. (v2 added the
/// `Ping`/`Pong` health probes, the router `Stats` endpoint, and the
/// sequence number on `Insert` that makes replay idempotent.)
pub const WIRE_VERSION: u32 = 2;

/// Hard ceiling on a frame's declared payload length (64 MiB). A peer
/// announcing more is broken or hostile; the reader errors out before
/// allocating a single payload byte.
pub const MAX_WIRE_FRAME: u64 = 64 << 20;

const HEADER: usize = 8 + 4 + 8; // magic + version + payload_len

/// Everything that can go wrong on a wire hop.
#[derive(Debug)]
pub enum WireError {
    /// The socket failed (including EOF mid-frame).
    Io(io::Error),
    /// The frame or its payload failed to decode.
    Store(StoreError),
    /// The peer declared a payload larger than [`MAX_WIRE_FRAME`].
    FrameTooLarge(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Store(e) => write!(f, "wire decode error: {e}"),
            WireError::FrameTooLarge(n) => {
                write!(f, "wire frame declares {n} payload bytes (cap {MAX_WIRE_FRAME})")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Store(e) => Some(e),
            WireError::FrameTooLarge(_) => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<StoreError> for WireError {
    fn from(e: StoreError) -> Self {
        WireError::Store(e)
    }
}

/// Frames a payload into a complete wire frame.
pub fn seal_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + payload.len() + 8);
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out
}

/// Validates framing + checksum of an in-memory frame and returns the
/// payload slice. Same hardening as [`crate::unseal`]: the declared
/// length is bounded (cap first, then the buffer itself, with no
/// overflowable arithmetic) before anything is sliced.
pub fn unseal_frame(bytes: &[u8]) -> Result<&[u8], StoreError> {
    if bytes.len() < HEADER + 8 {
        return Err(StoreError::Truncated { needed: HEADER + 8, available: bytes.len() });
    }
    if bytes[..8] != WIRE_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != WIRE_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let len64 = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    if len64 > MAX_WIRE_FRAME || len64 > (bytes.len() - HEADER - 8) as u64 {
        return Err(StoreError::Truncated {
            needed: len64.saturating_add((HEADER + 8) as u64).min(usize::MAX as u64) as usize,
            available: bytes.len(),
        });
    }
    let len = len64 as usize;
    let total = HEADER + len + 8;
    if bytes.len() > total {
        return Err(StoreError::TrailingBytes(bytes.len() - total));
    }
    let payload = &bytes[HEADER..HEADER + len];
    let stored = u64::from_le_bytes(bytes[total - 8..total].try_into().expect("8 bytes"));
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    Ok(payload)
}

/// Encodes one message as a complete frame (for tests and fuzzing; the
/// socket path is [`write_message`]).
pub fn frame_message<T: Codec>(msg: &T) -> Vec<u8> {
    let mut w = Writer::new();
    msg.encode(&mut w);
    seal_frame(&w.into_bytes())
}

/// Decodes one message from a complete in-memory frame, requiring the
/// payload to be consumed exactly.
pub fn decode_frame<T: Codec>(bytes: &[u8]) -> Result<T, StoreError> {
    let payload = unseal_frame(bytes)?;
    let mut r = Reader::new(payload);
    let msg = T::decode(&mut r)?;
    r.finish()?;
    Ok(msg)
}

/// Writes one framed message to a blocking stream.
pub fn write_message<T: Codec>(stream: &mut impl Write, msg: &T) -> Result<(), WireError> {
    stream.write_all(&frame_message(msg))?;
    stream.flush()?;
    Ok(())
}

/// Reads one framed message from a blocking stream. The header is read
/// and validated (magic, version, length cap) *before* the payload is
/// allocated, so a hostile peer cannot provoke an attacker-sized buffer.
pub fn read_message<T: Codec>(stream: &mut impl Read) -> Result<T, WireError> {
    let mut header = [0u8; HEADER];
    stream.read_exact(&mut header)?;
    if header[..8] != WIRE_MAGIC {
        return Err(StoreError::BadMagic.into());
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != WIRE_VERSION {
        return Err(StoreError::UnsupportedVersion(version).into());
    }
    let len64 = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    if len64 > MAX_WIRE_FRAME {
        return Err(WireError::FrameTooLarge(len64));
    }
    let mut body = vec![0u8; len64 as usize + 8];
    stream.read_exact(&mut body)?;
    let payload = &body[..len64 as usize];
    let stored = u64::from_le_bytes(body[len64 as usize..].try_into().expect("8 bytes"));
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed }.into());
    }
    let mut r = Reader::new(payload);
    let msg = T::decode(&mut r)?;
    r.finish()?;
    Ok(msg)
}

/// Floor for socket timeouts: `set_read_timeout(Some(ZERO))` is an error,
/// and sub-millisecond timeouts busy-spin on some platforms.
const MIN_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(1);

/// Reads exactly `buf.len()` bytes from `stream`, finishing before
/// `deadline`. Unlike a plain `set_read_timeout` + `read_exact`, the
/// budget covers the **whole** buffer: a peer dribbling one byte per
/// timeout window (slow-loris) cannot extend it, because the remaining
/// time is re-derived from the absolute deadline before every `read`.
fn read_exact_deadline(
    stream: &mut std::net::TcpStream,
    buf: &mut [u8],
    deadline: std::time::Instant,
) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        let now = std::time::Instant::now();
        if now >= deadline {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "frame read deadline exceeded"));
        }
        stream.set_read_timeout(Some((deadline - now).max(MIN_TIMEOUT)))?;
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // The socket timer expired (Linux reports `WouldBlock`, other
            // platforms `TimedOut`): loop back so the absolute-deadline
            // check decides — either more budget remains and the read
            // retries, or the canonical `TimedOut` is returned.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads one framed message from a TCP stream under two explicit bounds:
/// the peer has `first_byte_wait` to start a frame (no bytes within it ⇒
/// `Ok(None)`, the **idle** outcome — a server reaps the connection, a
/// client treats it as a timeout), and once the first byte has arrived
/// the whole frame must complete within `frame_budget` (exceeded ⇒
/// `Err(Io(TimedOut))`, the **stall** outcome — the connection is
/// desynchronized and must be dropped). This is the read every networked
/// component uses; the unbounded [`read_message`] remains for in-memory
/// streams and tests.
pub fn read_message_bounded<T: Codec>(
    stream: &mut std::net::TcpStream,
    first_byte_wait: std::time::Duration,
    frame_budget: std::time::Duration,
) -> Result<Option<T>, WireError> {
    let mut header = [0u8; HEADER];
    stream.set_read_timeout(Some(first_byte_wait.max(MIN_TIMEOUT)))?;
    let first = loop {
        match stream.read(&mut header) {
            Ok(0) => return Err(io::Error::from(io::ErrorKind::UnexpectedEof).into()),
            Ok(n) => break n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e.into()),
        }
    };
    // A frame has begun: everything else races one absolute deadline.
    let deadline = std::time::Instant::now() + frame_budget;
    read_exact_deadline(stream, &mut header[first..], deadline)?;
    if header[..8] != WIRE_MAGIC {
        return Err(StoreError::BadMagic.into());
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != WIRE_VERSION {
        return Err(StoreError::UnsupportedVersion(version).into());
    }
    let len64 = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    if len64 > MAX_WIRE_FRAME {
        return Err(WireError::FrameTooLarge(len64));
    }
    let mut body = vec![0u8; len64 as usize + 8];
    read_exact_deadline(stream, &mut body, deadline)?;
    let payload = &body[..len64 as usize];
    let stored = u64::from_le_bytes(body[len64 as usize..].try_into().expect("8 bytes"));
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed }.into());
    }
    let mut r = Reader::new(payload);
    let msg = T::decode(&mut r)?;
    r.finish()?;
    Ok(Some(msg))
}

fn bad_tag<T>(what: &str, tag: u8) -> Result<T, StoreError> {
    Err(StoreError::Malformed(format!("unknown {what} tag {tag}")))
}

// ---------------------------------------------------------------------------
// Resolve vocabulary (flexer-types::query)
// ---------------------------------------------------------------------------

impl Codec for ResolveQuery {
    fn encode(&self, w: &mut Writer) {
        match self {
            ResolveQuery::CorpusPair(p) => {
                w.put_u8(0);
                w.put_usize(*p);
            }
            ResolveQuery::TitlePair(a, b) => {
                w.put_u8(1);
                w.put_str(a);
                w.put_str(b);
            }
            ResolveQuery::Record(t) => {
                w.put_u8(2);
                w.put_str(t);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(ResolveQuery::CorpusPair(r.get_usize()?)),
            1 => Ok(ResolveQuery::TitlePair(r.get_str()?, r.get_str()?)),
            2 => Ok(ResolveQuery::Record(r.get_str()?)),
            t => bad_tag("ResolveQuery", t),
        }
    }
}

impl Codec for MatchTarget {
    fn encode(&self, w: &mut Writer) {
        match self {
            MatchTarget::Record(i) => {
                w.put_u8(0);
                w.put_usize(*i);
            }
            MatchTarget::Pair(i) => {
                w.put_u8(1);
                w.put_usize(*i);
            }
            MatchTarget::AdHoc => w.put_u8(2),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(MatchTarget::Record(r.get_usize()?)),
            1 => Ok(MatchTarget::Pair(r.get_usize()?)),
            2 => Ok(MatchTarget::AdHoc),
            t => bad_tag("MatchTarget", t),
        }
    }
}

impl Codec for RankedMatch {
    fn encode(&self, w: &mut Writer) {
        self.target.encode(w);
        w.put_f32(self.score); // raw bits — scores survive the hop bit-exactly
        w.put_bool(self.matched);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self { target: MatchTarget::decode(r)?, score: r.get_f32()?, matched: r.get_bool()? })
    }
}

impl Codec for ResolveResponse {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.intent);
        self.matches.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self { intent: r.get_usize()?, matches: Vec::<RankedMatch>::decode(r)? })
    }
}

// ---------------------------------------------------------------------------
// Router ↔ shard-server hop
// ---------------------------------------------------------------------------

impl Codec for WireQuery {
    fn encode(&self, w: &mut Writer) {
        match self {
            WireQuery::Grams(gs) => {
                w.put_u8(0);
                w.put_usize(gs.len());
                for &g in gs {
                    w.put_u64(g);
                }
            }
            WireQuery::Embedding(v) => {
                w.put_u8(1);
                w.put_f32_slice(v);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => {
                let n = r.get_count(8)?;
                let mut gs = Vec::with_capacity(n);
                for _ in 0..n {
                    gs.push(r.get_u64()?);
                }
                Ok(WireQuery::Grams(gs))
            }
            1 => Ok(WireQuery::Embedding(r.get_f32_slice()?)),
            t => bad_tag("WireQuery", t),
        }
    }
}

impl Codec for WireCandidates {
    fn encode(&self, w: &mut Writer) {
        match self {
            WireCandidates::Ids(ids) => {
                w.put_u8(0);
                w.put_u32_slice(ids);
            }
            WireCandidates::Hits(hits) => {
                w.put_u8(1);
                w.put_usize(hits.len());
                for &(d, g) in hits {
                    w.put_f32(d);
                    w.put_u32(g);
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(WireCandidates::Ids(r.get_u32_slice()?)),
            1 => {
                let n = r.get_count(8)?;
                let mut hits = Vec::with_capacity(n);
                for _ in 0..n {
                    let d = r.get_f32()?;
                    let g = r.get_u32()?;
                    hits.push((d, g));
                }
                Ok(WireCandidates::Hits(hits))
            }
            t => bad_tag("WireCandidates", t),
        }
    }
}

impl Codec for ShardRequest {
    fn encode(&self, w: &mut Writer) {
        match self {
            ShardRequest::Hello => w.put_u8(0),
            ShardRequest::Query(q) => {
                w.put_u8(1);
                q.encode(w);
            }
            ShardRequest::QueryBatch(qs) => {
                w.put_u8(2);
                qs.encode(w);
            }
            ShardRequest::Insert { seq, rows } => {
                w.put_u8(3);
                w.put_u64(*seq);
                w.put_usize(rows.len());
                for (id, title) in rows {
                    w.put_u64(*id);
                    w.put_str(title);
                }
            }
            ShardRequest::Shutdown => w.put_u8(4),
            ShardRequest::Ping => w.put_u8(5),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(ShardRequest::Hello),
            1 => Ok(ShardRequest::Query(WireQuery::decode(r)?)),
            2 => Ok(ShardRequest::QueryBatch(Vec::<WireQuery>::decode(r)?)),
            3 => {
                let seq = r.get_u64()?;
                // Each row is at least a u64 id + an 8-byte title length.
                let n = r.get_count(16)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = r.get_u64()?;
                    let title = r.get_str()?;
                    rows.push((id, title));
                }
                Ok(ShardRequest::Insert { seq, rows })
            }
            4 => Ok(ShardRequest::Shutdown),
            5 => Ok(ShardRequest::Ping),
            t => bad_tag("ShardRequest", t),
        }
    }
}

impl Codec for ShardResponse {
    fn encode(&self, w: &mut Writer) {
        match self {
            ShardResponse::Hello { shard, n_shards, n_records, backend, gram_counts } => {
                w.put_u8(0);
                w.put_u64(*shard);
                w.put_u64(*n_shards);
                w.put_u64(*n_records);
                w.put_str(backend);
                w.put_usize(gram_counts.len());
                for &(g, n) in gram_counts {
                    w.put_u64(g);
                    w.put_u32(n);
                }
            }
            ShardResponse::Candidates(c) => {
                w.put_u8(1);
                c.encode(w);
            }
            ShardResponse::CandidatesBatch(cs) => {
                w.put_u8(2);
                cs.encode(w);
            }
            ShardResponse::Inserted { n_records } => {
                w.put_u8(3);
                w.put_u64(*n_records);
            }
            ShardResponse::Shutdown => w.put_u8(4),
            ShardResponse::Error(msg) => {
                w.put_u8(5);
                w.put_str(msg);
            }
            ShardResponse::Pong => w.put_u8(6),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => {
                let shard = r.get_u64()?;
                let n_shards = r.get_u64()?;
                let n_records = r.get_u64()?;
                let backend = r.get_str()?;
                let n = r.get_count(12)?;
                let mut gram_counts = Vec::with_capacity(n);
                for _ in 0..n {
                    let g = r.get_u64()?;
                    let c = r.get_u32()?;
                    gram_counts.push((g, c));
                }
                Ok(ShardResponse::Hello { shard, n_shards, n_records, backend, gram_counts })
            }
            1 => Ok(ShardResponse::Candidates(WireCandidates::decode(r)?)),
            2 => Ok(ShardResponse::CandidatesBatch(Vec::<WireCandidates>::decode(r)?)),
            3 => Ok(ShardResponse::Inserted { n_records: r.get_u64()? }),
            4 => Ok(ShardResponse::Shutdown),
            5 => Ok(ShardResponse::Error(r.get_str()?)),
            6 => Ok(ShardResponse::Pong),
            t => bad_tag("ShardResponse", t),
        }
    }
}

// ---------------------------------------------------------------------------
// Client ↔ router hop
// ---------------------------------------------------------------------------

impl Codec for RouterRequest {
    fn encode(&self, w: &mut Writer) {
        match self {
            RouterRequest::Hello => w.put_u8(0),
            RouterRequest::Resolve { query, intent, top_k } => {
                w.put_u8(1);
                query.encode(w);
                w.put_u64(*intent);
                w.put_u64(*top_k);
            }
            RouterRequest::ResolveBatch { queries, intent, top_k } => {
                w.put_u8(2);
                queries.encode(w);
                w.put_u64(*intent);
                w.put_u64(*top_k);
            }
            RouterRequest::IngestBatch(titles) => {
                w.put_u8(3);
                w.put_usize(titles.len());
                for t in titles {
                    w.put_str(t);
                }
            }
            RouterRequest::Shutdown => w.put_u8(4),
            RouterRequest::Stats => w.put_u8(5),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(RouterRequest::Hello),
            1 => Ok(RouterRequest::Resolve {
                query: ResolveQuery::decode(r)?,
                intent: r.get_u64()?,
                top_k: r.get_u64()?,
            }),
            2 => Ok(RouterRequest::ResolveBatch {
                queries: Vec::<ResolveQuery>::decode(r)?,
                intent: r.get_u64()?,
                top_k: r.get_u64()?,
            }),
            3 => {
                // Each title carries at least its 8-byte length prefix.
                let n = r.get_count(8)?;
                let mut titles = Vec::with_capacity(n);
                for _ in 0..n {
                    titles.push(r.get_str()?);
                }
                Ok(RouterRequest::IngestBatch(titles))
            }
            4 => Ok(RouterRequest::Shutdown),
            5 => Ok(RouterRequest::Stats),
            t => bad_tag("RouterRequest", t),
        }
    }
}

impl Codec for WireIngestReport {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.record);
        w.put_u64(self.first_pair);
        w.put_u64(self.n_pairs);
        w.put_u64(self.n_suppressed);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            record: r.get_u64()?,
            first_pair: r.get_u64()?,
            n_pairs: r.get_u64()?,
            n_suppressed: r.get_u64()?,
        })
    }
}

fn put_outcome(w: &mut Writer, outcome: &Result<ResolveResponse, String>) {
    match outcome {
        Ok(resp) => {
            w.put_bool(true);
            resp.encode(w);
        }
        Err(msg) => {
            w.put_bool(false);
            w.put_str(msg);
        }
    }
}

fn get_outcome(r: &mut Reader<'_>) -> Result<Result<ResolveResponse, String>, StoreError> {
    if r.get_bool()? {
        Ok(Ok(ResolveResponse::decode(r)?))
    } else {
        Ok(Err(r.get_str()?))
    }
}

impl Codec for RouterResponse {
    fn encode(&self, w: &mut Writer) {
        match self {
            RouterResponse::Hello { n_shards, n_records, n_intents } => {
                w.put_u8(0);
                w.put_u64(*n_shards);
                w.put_u64(*n_records);
                w.put_u64(*n_intents);
            }
            RouterResponse::Resolve(outcome) => {
                w.put_u8(1);
                put_outcome(w, outcome);
            }
            RouterResponse::ResolveBatch(outcomes) => {
                w.put_u8(2);
                w.put_usize(outcomes.len());
                for outcome in outcomes {
                    put_outcome(w, outcome);
                }
            }
            RouterResponse::IngestBatch(reports) => {
                w.put_u8(3);
                reports.encode(w);
            }
            RouterResponse::Shutdown => w.put_u8(4),
            RouterResponse::Error(msg) => {
                w.put_u8(5);
                w.put_str(msg);
            }
            RouterResponse::Stats(pairs) => {
                w.put_u8(6);
                w.put_usize(pairs.len());
                for (name, value) in pairs {
                    w.put_str(name);
                    w.put_u64(*value);
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(RouterResponse::Hello {
                n_shards: r.get_u64()?,
                n_records: r.get_u64()?,
                n_intents: r.get_u64()?,
            }),
            1 => Ok(RouterResponse::Resolve(get_outcome(r)?)),
            2 => {
                // Each outcome is at least its 1-byte ok flag.
                let n = r.get_count(1)?;
                let mut outcomes = Vec::with_capacity(n);
                for _ in 0..n {
                    outcomes.push(get_outcome(r)?);
                }
                Ok(RouterResponse::ResolveBatch(outcomes))
            }
            3 => Ok(RouterResponse::IngestBatch(Vec::<WireIngestReport>::decode(r)?)),
            4 => Ok(RouterResponse::Shutdown),
            5 => Ok(RouterResponse::Error(r.get_str()?)),
            6 => {
                // Each pair is at least an 8-byte name length + a u64.
                let n = r.get_count(16)?;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.get_str()?;
                    let value = r.get_u64()?;
                    pairs.push((name, value));
                }
                Ok(RouterResponse::Stats(pairs))
            }
            t => bad_tag("RouterResponse", t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_types::IntentId;

    fn sample_messages(
    ) -> (Vec<ShardRequest>, Vec<ShardResponse>, Vec<RouterRequest>, Vec<RouterResponse>) {
        let resp = ResolveResponse {
            intent: 2 as IntentId,
            matches: vec![
                RankedMatch { target: MatchTarget::Record(7), score: 0.875, matched: true },
                RankedMatch { target: MatchTarget::Pair(3), score: 0.25, matched: false },
                RankedMatch { target: MatchTarget::AdHoc, score: -0.0, matched: false },
            ],
        };
        let shard_reqs = vec![
            ShardRequest::Hello,
            ShardRequest::Query(WireQuery::Grams(vec![1, u64::MAX, 42])),
            ShardRequest::QueryBatch(vec![
                WireQuery::Embedding(vec![0.5, -1.25, f32::MIN_POSITIVE]),
                WireQuery::Grams(vec![]),
            ]),
            ShardRequest::Insert {
                seq: 7,
                rows: vec![(9, "acme widget".into()), (10, String::new())],
            },
            ShardRequest::Ping,
            ShardRequest::Shutdown,
        ];
        let shard_resps = vec![
            ShardResponse::Hello {
                shard: 1,
                n_shards: 4,
                n_records: 1000,
                backend: "ngram".into(),
                gram_counts: vec![(3, 2), (u64::MAX, 1)],
            },
            ShardResponse::Candidates(WireCandidates::Ids(vec![1, 2, 3])),
            ShardResponse::CandidatesBatch(vec![
                WireCandidates::Hits(vec![(0.125, 4), (2.5, 9)]),
                WireCandidates::Ids(vec![]),
            ]),
            ShardResponse::Inserted { n_records: 1001 },
            ShardResponse::Pong,
            ShardResponse::Shutdown,
            ShardResponse::Error("nope".into()),
        ];
        let router_reqs = vec![
            RouterRequest::Hello,
            RouterRequest::Resolve {
                query: ResolveQuery::Record("nike shoe".into()),
                intent: 0,
                top_k: 5,
            },
            RouterRequest::ResolveBatch {
                queries: vec![ResolveQuery::CorpusPair(3), ResolveQuery::pair("a", "b")],
                intent: 1,
                top_k: 10,
            },
            RouterRequest::IngestBatch(vec!["x".into(), "y z".into()]),
            RouterRequest::Stats,
            RouterRequest::Shutdown,
        ];
        let router_resps = vec![
            RouterResponse::Hello { n_shards: 2, n_records: 30, n_intents: 3 },
            RouterResponse::Resolve(Ok(resp.clone())),
            RouterResponse::ResolveBatch(vec![Ok(resp), Err("shard down".into())]),
            RouterResponse::IngestBatch(vec![WireIngestReport {
                record: 30,
                first_pair: 100,
                n_pairs: 4,
                n_suppressed: 26,
            }]),
            RouterResponse::Stats(vec![
                ("router.shard.failover".into(), 3),
                ("router.shard.timeout".into(), u64::MAX),
            ]),
            RouterResponse::Shutdown,
            RouterResponse::Error("bad frame".into()),
        ];
        (shard_reqs, shard_resps, router_reqs, router_resps)
    }

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(msg: &T) {
        let frame = frame_message(msg);
        assert_eq!(&decode_frame::<T>(&frame).unwrap(), msg);
        // Stream path: two copies back to back must frame cleanly.
        let mut stream = Vec::new();
        write_message(&mut stream, msg).unwrap();
        write_message(&mut stream, msg).unwrap();
        let mut cursor = stream.as_slice();
        assert_eq!(&read_message::<T>(&mut cursor).unwrap(), msg);
        assert_eq!(&read_message::<T>(&mut cursor).unwrap(), msg);
        assert!(cursor.is_empty());
    }

    #[test]
    fn every_message_roundtrips_bit_exactly() {
        let (sreq, sresp, rreq, rresp) = sample_messages();
        sreq.iter().for_each(roundtrip);
        sresp.iter().for_each(roundtrip);
        rreq.iter().for_each(roundtrip);
        rresp.iter().for_each(roundtrip);
    }

    #[test]
    fn corrupt_frames_fail_without_panicking() {
        let frame = frame_message(&ShardRequest::Query(WireQuery::Grams(vec![7, 8])));
        // Truncation at every prefix length.
        for cut in 0..frame.len() {
            assert!(decode_frame::<ShardRequest>(&frame[..cut]).is_err());
        }
        // Forged lengths, including the overflow-bait values.
        for forged in [u64::MAX, u64::MAX - 7, MAX_WIRE_FRAME + 1, frame.len() as u64, 1 << 60] {
            let mut bad = frame.clone();
            bad[12..20].copy_from_slice(&forged.to_le_bytes());
            assert!(decode_frame::<ShardRequest>(&bad).is_err());
        }
        // Wrong magic / version.
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(matches!(decode_frame::<ShardRequest>(&bad), Err(StoreError::BadMagic)));
        let mut bad = frame.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_frame::<ShardRequest>(&bad),
            Err(StoreError::UnsupportedVersion(99))
        ));
        // A flipped payload bit trips the checksum.
        let mut bad = frame.clone();
        bad[HEADER] ^= 0x01;
        assert!(matches!(
            decode_frame::<ShardRequest>(&bad),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn bounded_reader_distinguishes_idle_stall_and_success() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};
        use std::time::Duration;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            // 1. Say nothing for a while (idle), then send a full frame.
            std::thread::sleep(Duration::from_millis(80));
            write_message(&mut stream, &ShardRequest::Ping).unwrap();
            // 2. Start a frame and stall after the first byte.
            stream.write_all(&WIRE_MAGIC[..1]).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(300));
        });
        let (mut conn, _) = listener.accept().unwrap();
        // Idle: no bytes inside the first-byte window.
        let idle = read_message_bounded::<ShardRequest>(
            &mut conn,
            Duration::from_millis(20),
            Duration::from_millis(200),
        )
        .unwrap();
        assert!(idle.is_none(), "no frame started yet — idle, not an error");
        // Success: a complete frame within budget.
        let msg = read_message_bounded::<ShardRequest>(
            &mut conn,
            Duration::from_secs(2),
            Duration::from_secs(2),
        )
        .unwrap();
        assert_eq!(msg, Some(ShardRequest::Ping));
        // Stall: the frame began but never completes within its budget.
        let stalled = read_message_bounded::<ShardRequest>(
            &mut conn,
            Duration::from_secs(2),
            Duration::from_millis(50),
        );
        assert!(
            matches!(stalled, Err(WireError::Io(ref e)) if e.kind() == io::ErrorKind::TimedOut),
            "mid-frame stall must surface as a timeout, got {stalled:?}"
        );
        client.join().unwrap();
    }

    #[test]
    fn stream_reader_rejects_oversized_frames_before_allocating() {
        let mut frame = frame_message(&RouterRequest::Hello);
        frame[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut cursor = frame.as_slice();
        assert!(matches!(
            read_message::<RouterRequest>(&mut cursor),
            Err(WireError::FrameTooLarge(u64::MAX))
        ));
    }
}
