//! [`Codec`] — encode/decode of every workspace type a snapshot contains.
//!
//! Encoding is canonical: a given value always produces the same bytes
//! (hash-map-backed types are serialized in sorted order), which is what
//! makes `save → load → save` byte-identical. Decoding validates every
//! structural invariant it can and reports [`StoreError::Malformed`]
//! instead of panicking on corrupted but checksum-valid input.

use crate::format::{Reader, StoreError, Writer};
use flexer_ann::kmeans::KMeans;
use flexer_ann::{AnyIndex, FlatIndex, IvfIndex};
use flexer_block::{AnnRecordIndex, BlockerState, NGramIndex};
use flexer_graph::{Aggregation, CsrGraph, GnnModel, MultiplexGraph, SageLayer, TrainedGnn};
use flexer_matcher::summarize::DfTable;
use flexer_matcher::{BinaryMatcher, PairFeaturizer};
use flexer_nn::{Linear, Matrix, Mlp};
use flexer_types::{AnnBlockerConfig, Intent, IntentSet, LabelMatrix, NGramBlockerConfig};

/// Binary encode/decode against the `.flexer` payload format.
pub trait Codec: Sized {
    /// Appends this value's canonical encoding.
    fn encode(&self, w: &mut Writer);
    /// Decodes and validates one value.
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError>;
}

fn malformed<T>(msg: impl Into<String>) -> Result<T, StoreError> {
    Err(StoreError::Malformed(msg.into()))
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_bool(false),
            Some(v) => {
                w.put_bool(true);
                v.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(if r.get_bool()? { Some(T::decode(r)?) } else { None })
    }
}

impl Codec for Matrix {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.rows());
        w.put_usize(self.cols());
        w.put_f32_slice(self.data());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let rows = r.get_usize()?;
        let cols = r.get_usize()?;
        let data = r.get_f32_slice()?;
        let expect = rows.checked_mul(cols);
        if expect != Some(data.len()) {
            return malformed(format!("matrix {rows}×{cols} with {} values", data.len()));
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

impl Codec for Linear {
    fn encode(&self, w: &mut Writer) {
        self.w.encode(w);
        w.put_f32_slice(&self.b);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let weight = Matrix::decode(r)?;
        let b = r.get_f32_slice()?;
        if b.len() != weight.cols() {
            return malformed(format!("bias of {} for {} outputs", b.len(), weight.cols()));
        }
        let grad_w = Matrix::zeros(weight.rows(), weight.cols());
        let grad_b = vec![0.0; b.len()];
        Ok(Linear { w: weight, b, grad_w, grad_b })
    }
}

impl Codec for Mlp {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.n_layers());
        for layer in self.layers() {
            layer.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let n = r.get_count(32)?;
        if n == 0 {
            return malformed("an MLP needs at least one layer");
        }
        let mut layers = Vec::with_capacity(n);
        for _ in 0..n {
            layers.push(Linear::decode(r)?);
        }
        for pair in layers.windows(2) {
            if pair[0].out_dim() != pair[1].in_dim() {
                return malformed("MLP layer dimensions do not chain");
            }
        }
        Ok(Mlp::from_layers(layers))
    }
}

impl Codec for Aggregation {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Aggregation::RelationTyped => 0,
            Aggregation::Pooled => 1,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(Aggregation::RelationTyped),
            1 => Ok(Aggregation::Pooled),
            t => malformed(format!("unknown aggregation tag {t}")),
        }
    }
}

impl Codec for SageLayer {
    fn encode(&self, w: &mut Writer) {
        self.aggregation().encode(w);
        self.linear().encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let aggregation = Aggregation::decode(r)?;
        let linear = Linear::decode(r)?;
        let factor = match aggregation {
            Aggregation::RelationTyped => 3,
            Aggregation::Pooled => 2,
        };
        if linear.in_dim() % factor != 0 {
            return malformed("SAGE linear width is not a multiple of the concat factor");
        }
        Ok(SageLayer::from_parts(linear, aggregation))
    }
}

impl Codec for GnnModel {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.n_layers());
        for layer in self.sage_layers() {
            layer.encode(w);
        }
        self.head().encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let n = r.get_count(33)?;
        if n == 0 {
            return malformed("a GNN needs at least one layer");
        }
        let mut layers = Vec::with_capacity(n);
        for _ in 0..n {
            layers.push(SageLayer::decode(r)?);
        }
        let head = Linear::decode(r)?;
        for pair in layers.windows(2) {
            if pair[0].out_dim() != pair[1].in_dim() {
                return malformed("GNN layer dimensions do not chain");
            }
        }
        if layers.last().expect("non-empty").out_dim() != head.in_dim() {
            return malformed("GNN head width does not match the final layer");
        }
        Ok(GnnModel::from_parts(layers, head))
    }
}

impl Codec for CsrGraph {
    fn encode(&self, w: &mut Writer) {
        w.put_usize_slice(self.indptr());
        w.put_u32_slice(self.indices());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let indptr = r.get_usize_slice()?;
        let indices = r.get_u32_slice()?;
        if indptr.is_empty() || indptr[0] != 0 {
            return malformed("CSR indptr must start with 0");
        }
        if !indptr.windows(2).all(|w| w[0] <= w[1]) {
            return malformed("CSR indptr must be monotone");
        }
        if *indptr.last().expect("non-empty") != indices.len() {
            return malformed("CSR indptr must end at the edge count");
        }
        let n_nodes = indptr.len() - 1;
        if indices.iter().any(|&u| u as usize >= n_nodes) {
            return malformed("CSR edge references a node out of range");
        }
        Ok(CsrGraph::from_parts(indptr, indices))
    }
}

impl Codec for MultiplexGraph {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.n_pairs);
        w.put_usize(self.n_layers);
        self.features.encode(w);
        self.intra.encode(w);
        self.inter.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let n_pairs = r.get_usize()?;
        let n_layers = r.get_usize()?;
        let features = Matrix::decode(r)?;
        let intra = CsrGraph::decode(r)?;
        let inter = CsrGraph::decode(r)?;
        let n_nodes = n_pairs.checked_mul(n_layers);
        if n_nodes != Some(features.rows()) {
            return malformed("multiplex feature rows != pairs × layers");
        }
        if intra.n_nodes() != features.rows() || inter.n_nodes() != features.rows() {
            return malformed("multiplex adjacency node count mismatch");
        }
        let dim = features.cols();
        Ok(MultiplexGraph { n_pairs, n_layers, dim, features, intra, inter })
    }
}

impl Codec for TrainedGnn {
    fn encode(&self, w: &mut Writer) {
        self.model.encode(w);
        w.put_f64(self.best_valid_f1);
        w.put_f32_slice(&self.scores);
        w.put_bool_slice(&self.preds);
        w.put_usize(self.epochs_run);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let model = GnnModel::decode(r)?;
        let best_valid_f1 = r.get_f64()?;
        let scores = r.get_f32_slice()?;
        let preds = r.get_bool_slice()?;
        let epochs_run = r.get_usize()?;
        if scores.len() != preds.len() {
            return malformed("trained GNN scores/preds length mismatch");
        }
        Ok(TrainedGnn { model, best_valid_f1, scores, preds, epochs_run })
    }
}

impl Codec for KMeans {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.k);
        w.put_usize(self.dim);
        w.put_f32_slice(&self.centroids);
        w.put_usize_slice(&self.assignments);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let k = r.get_usize()?;
        let dim = r.get_usize()?;
        let centroids = r.get_f32_slice()?;
        let assignments = r.get_usize_slice()?;
        if k.checked_mul(dim) != Some(centroids.len()) {
            return malformed("k-means centroid buffer shape mismatch");
        }
        if assignments.iter().any(|&a| a >= k.max(1)) {
            return malformed("k-means assignment out of range");
        }
        Ok(KMeans { k, dim, centroids, assignments })
    }
}

impl Codec for FlatIndex {
    fn encode(&self, w: &mut Writer) {
        use flexer_ann::VectorIndex;
        w.put_usize(self.dim());
        w.put_f32_slice(self.data());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let dim = r.get_usize()?;
        let data = r.get_f32_slice()?;
        if dim == 0 || data.len() % dim != 0 {
            return malformed("flat index data is not whole rows");
        }
        if data.iter().any(|v| !v.is_finite()) {
            return malformed("flat index holds non-finite values");
        }
        Ok(FlatIndex::from_rows(dim, &data))
    }
}

impl Codec for IvfIndex {
    fn encode(&self, w: &mut Writer) {
        use flexer_ann::VectorIndex;
        w.put_usize(self.dim());
        self.quantizer().encode(w);
        w.put_usize(self.lists().len());
        for list in self.lists() {
            w.put_usize_slice(list);
        }
        w.put_f32_slice(self.data());
        w.put_usize(self.nprobe());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let dim = r.get_usize()?;
        let quantizer = KMeans::decode(r)?;
        let n_lists = r.get_count(8)?;
        let mut lists = Vec::with_capacity(n_lists);
        for _ in 0..n_lists {
            lists.push(r.get_usize_slice()?);
        }
        let data = r.get_f32_slice()?;
        let nprobe = r.get_usize()?;
        if dim == 0 || data.len() % dim != 0 {
            return malformed("IVF index data is not whole rows");
        }
        if data.iter().any(|v| !v.is_finite()) {
            return malformed("IVF index holds non-finite values");
        }
        if quantizer.dim != dim || lists.len() != quantizer.k.max(1) {
            return malformed("IVF quantizer/list shape mismatch");
        }
        let n = data.len() / dim;
        let mut seen = vec![false; n];
        for list in &lists {
            for &id in list {
                if id >= n || seen[id] {
                    return malformed("IVF inverted lists are not a partition of the vectors");
                }
                seen[id] = true;
            }
        }
        if !seen.iter().all(|&s| s) {
            return malformed("IVF inverted lists are not a partition of the vectors");
        }
        Ok(IvfIndex::from_parts(dim, quantizer, lists, data, nprobe))
    }
}

impl Codec for AnyIndex {
    fn encode(&self, w: &mut Writer) {
        match self {
            AnyIndex::Flat(i) => {
                w.put_u8(0);
                i.encode(w);
            }
            AnyIndex::Ivf(i) => {
                w.put_u8(1);
                i.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(AnyIndex::Flat(FlatIndex::decode(r)?)),
            1 => Ok(AnyIndex::Ivf(IvfIndex::decode(r)?)),
            t => malformed(format!("unknown index tag {t}")),
        }
    }
}

impl Codec for NGramBlockerConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.q);
        w.put_usize(self.min_shared);
        w.put_usize(self.max_bucket);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let q = r.get_usize()?;
        let min_shared = r.get_usize()?;
        let max_bucket = r.get_usize()?;
        if q == 0 || min_shared == 0 {
            return malformed("n-gram blocker q and min_shared must be positive");
        }
        Ok(NGramBlockerConfig { q, min_shared, max_bucket })
    }
}

impl Codec for AnnBlockerConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.q);
        w.put_usize(self.dim);
        w.put_usize(self.k);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let q = r.get_usize()?;
        let dim = r.get_usize()?;
        let k = r.get_usize()?;
        if q == 0 || dim == 0 || k == 0 {
            return malformed("ANN blocker q, dim and k must be positive");
        }
        Ok(AnnBlockerConfig { q, dim, k })
    }
}

impl Codec for NGramIndex {
    fn encode(&self, w: &mut Writer) {
        self.config().encode(w);
        w.put_usize(self.len());
        // Buckets in ascending gram-hash order, ids ascending within — the
        // canonical form that makes re-encoding byte-identical.
        let buckets = self.sorted_buckets();
        w.put_usize(buckets.len());
        for (gram, ids) in buckets {
            w.put_u64(gram);
            w.put_u32_slice(ids);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let config = NGramBlockerConfig::decode(r)?;
        let n_records = r.get_usize()?;
        let n_buckets = r.get_count(16)?;
        let mut buckets = Vec::with_capacity(n_buckets);
        let mut prev: Option<u64> = None;
        for _ in 0..n_buckets {
            let gram = r.get_u64()?;
            if prev.is_some_and(|p| p >= gram) {
                return malformed("blocker buckets are not in ascending gram order");
            }
            prev = Some(gram);
            buckets.push((gram, r.get_u32_slice()?));
        }
        NGramIndex::from_parts(config, n_records, buckets).map_err(StoreError::Malformed)
    }
}

impl Codec for AnnRecordIndex {
    fn encode(&self, w: &mut Writer) {
        self.config().encode(w);
        w.put_f32_slice(self.data());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let config = AnnBlockerConfig::decode(r)?;
        let data = r.get_f32_slice()?;
        AnnRecordIndex::from_parts(config, data).map_err(StoreError::Malformed)
    }
}

impl Codec for BlockerState {
    fn encode(&self, w: &mut Writer) {
        match self {
            BlockerState::Exhaustive => w.put_u8(0),
            BlockerState::NGram(ix) => {
                w.put_u8(1);
                ix.encode(w);
            }
            BlockerState::Ann(ix) => {
                w.put_u8(2);
                ix.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(BlockerState::Exhaustive),
            1 => Ok(BlockerState::NGram(NGramIndex::decode(r)?)),
            2 => Ok(BlockerState::Ann(AnnRecordIndex::decode(r)?)),
            t => malformed(format!("unknown blocker tag {t}")),
        }
    }
}

impl Codec for Intent {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.id);
        w.put_str(&self.name);
        w.put_bool(self.is_equivalence);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let id = r.get_usize()?;
        let name = r.get_str()?;
        let is_equivalence = r.get_bool()?;
        Ok(Intent { id, name, is_equivalence })
    }
}

impl Codec for IntentSet {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for intent in self.iter() {
            intent.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let n = r.get_count(17)?;
        let mut intents = Vec::with_capacity(n);
        for _ in 0..n {
            intents.push(Intent::decode(r)?);
        }
        // `IntentSet::new` re-assigns ids to positions, matching the
        // encoded order.
        Ok(IntentSet::new(intents))
    }
}

impl Codec for LabelMatrix {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.n_pairs());
        w.put_usize(self.n_intents());
        for i in 0..self.n_pairs() {
            for p in 0..self.n_intents() {
                w.put_u8(self.get(i, p) as u8);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let n_pairs = r.get_usize()?;
        let n_intents = r.get_usize()?;
        let n_labels = match n_pairs.checked_mul(n_intents) {
            Some(n) => n,
            None => return malformed("label matrix shape overflows"),
        };
        if n_labels > r.remaining() {
            return Err(StoreError::Truncated { needed: n_labels, available: r.remaining() });
        }
        let mut m = LabelMatrix::zeros(n_pairs, n_intents);
        for i in 0..n_pairs {
            for p in 0..n_intents {
                match r.get_u8()? {
                    0 => {}
                    1 => m.set(i, p, true),
                    b => return malformed(format!("invalid label byte {b}")),
                }
            }
        }
        Ok(m)
    }
}

impl Codec for PairFeaturizer {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.hash_dim);
        w.put_usize(self.char_ngram);
        w.put_bool(self.use_cross);
        w.put_usize(self.max_tokens);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let hash_dim = r.get_usize()?;
        let char_ngram = r.get_usize()?;
        let use_cross = r.get_bool()?;
        let max_tokens = r.get_usize()?;
        if hash_dim == 0 {
            return malformed("featurizer hash dimension must be positive");
        }
        Ok(PairFeaturizer { hash_dim, char_ngram, use_cross, max_tokens })
    }
}

impl Codec for DfTable {
    fn encode(&self, w: &mut Writer) {
        // Sorted entries: identical tables encode identically regardless of
        // hash-map iteration order.
        let entries = self.entries();
        w.put_usize(entries.len());
        for (token, count) in entries {
            w.put_str(token);
            w.put_u32(count);
        }
        w.put_u32(self.n_docs());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let n = r.get_count(12)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let token = r.get_str()?;
            let count = r.get_u32()?;
            entries.push((token, count));
        }
        let n_docs = r.get_u32()?;
        Ok(DfTable::from_entries(entries, n_docs))
    }
}

impl Codec for BinaryMatcher {
    fn encode(&self, w: &mut Writer) {
        self.input().encode(w);
        self.head().encode(w);
        w.put_f64(self.best_valid_f1);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let input = Linear::decode(r)?;
        let head = Mlp::decode(r)?;
        let best_valid_f1 = r.get_f64()?;
        if input.out_dim() != head.layer(0).in_dim() {
            return malformed("matcher trunk/head width mismatch");
        }
        Ok(BinaryMatcher::from_parts(input, head, best_valid_f1))
    }
}

/// Length-prefixed homogeneous sequences.
impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for v in self {
            v.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let n = r.get_count(1)?;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn roundtrip<T: Codec>(value: &T) -> T {
        let mut w = Writer::new();
        value.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = T::decode(&mut r).expect("decodes");
        r.finish().expect("fully consumed");
        // Canonical encoding: re-encoding the decoded value is bit-identical.
        let mut w2 = Writer::new();
        decoded.encode(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "re-encode must be byte-identical");
        decoded
    }

    #[test]
    fn matrix_roundtrip_bitexact() {
        let m = Matrix::from_fn(4, 3, |i, j| (i as f32 - 1.5) * (j as f32 + 0.25));
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn linear_and_mlp_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let linear = Linear::new(&mut rng, 5, 3);
        let got = roundtrip(&linear);
        assert_eq!(got.w, linear.w);
        assert_eq!(got.b, linear.b);
        assert_eq!(got.grad_w.frobenius_norm(), 0.0, "gradients reset on load");

        let mlp = Mlp::new(
            &mut rng,
            &flexer_nn::MlpConfig { input_dim: 4, hidden: vec![6, 3], output_dim: 2 },
        );
        let got = roundtrip(&mlp);
        let x = Matrix::from_fn(3, 4, |i, j| (i + j) as f32 * 0.2);
        assert_eq!(got.forward(&x), mlp.forward(&x));
    }

    #[test]
    fn gnn_model_roundtrip_preserves_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        for agg in [Aggregation::RelationTyped, Aggregation::Pooled] {
            let model = GnnModel::new(&mut rng, 4, &[5, 5], agg);
            let features = Matrix::from_fn(6, 4, |i, j| ((i * 3 + j) % 7) as f32 * 0.3 - 1.0);
            let graph = MultiplexGraph::assemble(
                3,
                2,
                features,
                &[vec![vec![1], vec![0], vec![1]], vec![vec![2], vec![], vec![0]]],
            );
            let got = roundtrip(&model);
            assert_eq!(got.forward(&graph).final_hidden(), model.forward(&graph).final_hidden());
        }
    }

    #[test]
    fn csr_and_multiplex_roundtrip() {
        let g = CsrGraph::from_in_neighbors(&[vec![1, 2], vec![], vec![0]]);
        assert_eq!(roundtrip(&g), g);

        let features = Matrix::from_fn(6, 2, |i, j| (i * 2 + j) as f32);
        let mg = MultiplexGraph::assemble(
            3,
            2,
            features,
            &[vec![vec![1], vec![0], vec![1]], vec![vec![], vec![0], vec![0]]],
        );
        let got = roundtrip(&mg);
        assert_eq!(got.features, mg.features);
        assert_eq!(got.intra, mg.intra);
        assert_eq!(got.inter, mg.inter);
        assert_eq!((got.n_pairs, got.n_layers, got.dim), (3, 2, 2));
    }

    #[test]
    fn csr_rejects_out_of_range_edges() {
        let mut w = Writer::new();
        w.put_usize_slice(&[0, 1]); // 1 node, 1 edge
        w.put_u32_slice(&[5]); // … pointing at node 5
        let bytes = w.into_bytes();
        assert!(matches!(
            CsrGraph::decode(&mut Reader::new(&bytes)),
            Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn indexes_roundtrip() {
        let rows: Vec<f32> = (0..60).map(|i| ((i * 37) % 19) as f32 * 0.21 - 2.0).collect();
        let flat = FlatIndex::from_rows(3, &rows);
        let got = roundtrip(&AnyIndex::Flat(flat.clone()));
        use flexer_ann::VectorIndex;
        assert_eq!(got.search(&rows[0..3], 4), flat.search(&rows[0..3], 4));

        let ivf = IvfIndex::build(
            3,
            &rows,
            flexer_ann::IvfConfig { nlist: 4, nprobe: 2, ..Default::default() },
        );
        let got = roundtrip(&AnyIndex::Ivf(ivf.clone()));
        assert_eq!(got.search(&rows[6..9], 5), ivf.search(&rows[6..9], 5));
    }

    #[test]
    fn intents_labels_featurizer_df_roundtrip() {
        let intents = IntentSet::new(vec![
            Intent::equivalence(0),
            Intent::named(1, "Brand"),
            Intent::named(2, "Main-Cat."),
        ]);
        let got = roundtrip(&intents);
        assert_eq!(got.names(), intents.names());
        assert_eq!(got.equivalence_id(), Some(0));

        let labels =
            LabelMatrix::from_columns(&[vec![true, false, true], vec![false, false, true]])
                .unwrap();
        assert_eq!(roundtrip(&labels), labels);

        let f =
            PairFeaturizer { hash_dim: 1 << 10, char_ngram: 3, use_cross: true, max_tokens: 16 };
        assert_eq!(roundtrip(&f), f);

        use flexer_matcher::tokenize::tokenize;
        let docs = [tokenize("nike air max"), tokenize("adidas boost")];
        let refs: Vec<&[flexer_matcher::tokenize::Token]> =
            docs.iter().map(|d| d.as_slice()).collect();
        let df = DfTable::build(refs.into_iter());
        let got = roundtrip(&df);
        assert_eq!(got.entries(), df.entries());
        assert_eq!(got.n_docs(), df.n_docs());
    }
}
