//! # flexer-store
//!
//! Versioned, checksummed binary snapshots of trained FlexER models — the
//! model-repository layer that makes resolution a *query-time* workload
//! instead of a retrain-every-time batch job.
//!
//! The paper trains P per-intent GNNs over one multiplex intents graph
//! (§4); everything those models need at inference time — the per-intent
//! matcher weights that produce intent-based representations (§4.1.1), the
//! graph itself with its intra/inter adjacencies (§4.1.2–4.1.3), the
//! frozen GNN weights and prediction heads (§4.2–4.3, Eqs. 3–5), the
//! per-layer ANN indexes, and the intent metadata of §2 — serializes into
//! a single `.flexer` file via [`ModelSnapshot`]. `flexer-serve` loads one
//! and answers "which entities match this record, under intent I?" without
//! touching the training pipeline, the economics argued by the ER
//! model-repository line of work.
//!
//! Design points:
//!
//! * **Offline-friendly.** No serde — the environment has no network — so
//!   the format is a hand-rolled little-endian [`Writer`]/[`Reader`] pair
//!   (the same idiom as the `crates/compat` shims) framed by a magic
//!   string, a version and an FNV-1a checksum.
//! * **Bit-exact.** Floats are stored as raw IEEE-754 bits and hash-backed
//!   tables serialize in sorted order, so `save → load → save` is
//!   byte-identical and a reloaded model reproduces the batch model's
//!   predictions exactly.
//! * **Paranoid on load.** Framing, checksum, per-type shape invariants
//!   and cross-field consistency are all validated; corrupted input
//!   surfaces as a typed [`StoreError`], never a panic or a bogus model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod format;
pub mod shard;
pub mod snapshot;
pub mod wire;

pub use codec::Codec;
pub use format::{fnv1a64, seal, unseal, Reader, StoreError, Writer, MAGIC, VERSION};
pub use shard::ShardFrames;
pub use snapshot::{IndexKind, ModelSnapshot};
pub use wire::{
    decode_frame, frame_message, read_message, read_message_bounded, seal_frame, unseal_frame,
    write_message, WireError, MAX_WIRE_FRAME, WIRE_MAGIC, WIRE_VERSION,
};
