//! Training losses of the paper.
//!
//! * [`softmax_cross_entropy`] — the (binary, via 2 logits) cross entropy of
//!   Eq. 1, used to fine-tune per-intent matchers and to train the GNN.
//! * [`multilabel_bce_with_logits`] — the weighted multi-label adaptation of
//!   Eq. 2 with per-intent weights `w_p` and element-wise sigmoid.
//!
//! Both return `(mean loss, gradient w.r.t. logits)` so callers can feed the
//! gradient straight into [`crate::linear::Linear::backward`].

use crate::activation::{sigmoid, softmax_rows};
use crate::matrix::Matrix;

/// Softmax cross entropy over class logits `[n, c]` with integer targets.
/// Returns the mean loss and `d loss / d logits`.
///
/// `sample_weight`, when given, rescales each example's contribution (used
/// to mask non-train nodes in transductive GNN training by weighting 0).
pub fn softmax_cross_entropy(
    logits: &Matrix,
    targets: &[usize],
    sample_weight: Option<&[f32]>,
) -> (f32, Matrix) {
    let n = logits.rows();
    assert_eq!(targets.len(), n, "targets length mismatch");
    if let Some(w) = sample_weight {
        assert_eq!(w.len(), n, "sample weight length mismatch");
    }
    if n == 0 {
        return (0.0, Matrix::zeros(0, logits.cols()));
    }
    let probs = softmax_rows(logits);
    let total_weight: f32 = sample_weight.map_or(n as f32, |w| w.iter().sum());
    let denom = if total_weight > 0.0 { total_weight } else { 1.0 };
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    for i in 0..n {
        let w = sample_weight.map_or(1.0, |ws| ws[i]);
        let t = targets[i];
        debug_assert!(t < logits.cols(), "target class out of range");
        let p = probs.get(i, t).max(1e-12);
        loss += -w * p.ln();
        let row = grad.row_mut(i);
        row[t] -= 1.0;
        for v in row.iter_mut() {
            *v *= w / denom;
        }
    }
    (loss / denom, grad)
}

/// Weighted multi-label binary cross entropy with logits (Eq. 2):
///
/// `BCE = (1/P) Σ_p −w_p · (y_p·log σ(ŷ_p) + (1−y_p)·log(1−σ(ŷ_p)))`
///
/// averaged over the batch. `targets` is a `[n, P]` 0/1 matrix and
/// `intent_weights` the `w_p` (the paper settles on equal weights).
pub fn multilabel_bce_with_logits(
    logits: &Matrix,
    targets: &Matrix,
    intent_weights: &[f32],
) -> (f32, Matrix) {
    let (n, p) = (logits.rows(), logits.cols());
    assert_eq!((targets.rows(), targets.cols()), (n, p), "target shape mismatch");
    assert_eq!(intent_weights.len(), p, "intent weight length mismatch");
    if n == 0 {
        return (0.0, Matrix::zeros(0, p));
    }
    let mut grad = Matrix::zeros(n, p);
    let mut loss = 0.0f32;
    let scale = 1.0 / (n as f32 * p as f32);
    for i in 0..n {
        for (j, &w) in intent_weights.iter().enumerate() {
            let z = logits.get(i, j);
            let y = targets.get(i, j);
            // Stable: log(1+e^z) = max(z,0) + ln(1 + e^{-|z|})
            let log1p_exp = z.max(0.0) + (-z.abs()).exp().ln_1p();
            loss += w * (log1p_exp - y * z);
            grad.set(i, j, w * (sigmoid(z) - y) * scale);
        }
    }
    (loss * scale, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ce_perfect_prediction_has_near_zero_loss() {
        let logits = Matrix::from_vec(2, 2, vec![10.0, -10.0, -10.0, 10.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1], None);
        assert!(loss < 1e-6);
        assert!(grad.frobenius_norm() < 1e-6);
    }

    #[test]
    fn ce_uniform_prediction_loss_is_ln_c() {
        let logits = Matrix::zeros(4, 2);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 0, 1], None);
        assert!((loss - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(2, 2, vec![0.3, -0.2, 1.0, 0.5]);
        let targets = [1usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &targets, None);
        let eps = 1e-3;
        for i in 0..2 {
            for j in 0..2 {
                let mut lp = logits.clone();
                lp.set(i, j, lp.get(i, j) + eps);
                let mut lm = logits.clone();
                lm.set(i, j, lm.get(i, j) - eps);
                let (l1, _) = softmax_cross_entropy(&lp, &targets, None);
                let (l2, _) = softmax_cross_entropy(&lm, &targets, None);
                let num = (l1 - l2) / (2.0 * eps);
                assert!((num - grad.get(i, j)).abs() < 1e-3, "d[{i},{j}]");
            }
        }
    }

    #[test]
    fn ce_sample_weights_mask_examples() {
        let logits = Matrix::from_vec(2, 2, vec![5.0, -5.0, 5.0, -5.0]);
        // Second example is wrong but masked out.
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1], Some(&[1.0, 0.0]));
        assert!(loss < 1e-3);
        assert_eq!(grad.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn ce_all_masked_is_safe() {
        let logits = Matrix::zeros(2, 2);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1], Some(&[0.0, 0.0]));
        assert_eq!(loss, 0.0);
        assert!(grad.all_finite());
    }

    #[test]
    fn ce_empty_batch() {
        let logits = Matrix::zeros(0, 2);
        let (loss, grad) = softmax_cross_entropy(&logits, &[], None);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.rows(), 0);
    }

    #[test]
    fn bce_perfect_prediction_near_zero() {
        let logits = Matrix::from_vec(1, 3, vec![20.0, -20.0, 20.0]);
        let targets = Matrix::from_vec(1, 3, vec![1.0, 0.0, 1.0]);
        let (loss, _) = multilabel_bce_with_logits(&logits, &targets, &[1.0; 3]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(2, 2, vec![0.1, -0.7, 0.4, 1.2]);
        let targets = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let w = [0.5, 2.0];
        let (_, grad) = multilabel_bce_with_logits(&logits, &targets, &w);
        let eps = 1e-3;
        for i in 0..2 {
            for j in 0..2 {
                let mut lp = logits.clone();
                lp.set(i, j, lp.get(i, j) + eps);
                let mut lm = logits.clone();
                lm.set(i, j, lm.get(i, j) - eps);
                let (l1, _) = multilabel_bce_with_logits(&lp, &targets, &w);
                let (l2, _) = multilabel_bce_with_logits(&lm, &targets, &w);
                let num = (l1 - l2) / (2.0 * eps);
                assert!((num - grad.get(i, j)).abs() < 1e-3, "d[{i},{j}]");
            }
        }
    }

    #[test]
    fn bce_intent_weights_rescale() {
        let logits = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let targets = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let (l1, _) = multilabel_bce_with_logits(&logits, &targets, &[1.0, 1.0]);
        let (l2, _) = multilabel_bce_with_logits(&logits, &targets, &[2.0, 2.0]);
        assert!((l2 - 2.0 * l1).abs() < 1e-6);
    }

    #[test]
    fn bce_stable_for_extreme_logits() {
        let logits = Matrix::from_vec(1, 2, vec![1000.0, -1000.0]);
        let targets = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let (loss, grad) = multilabel_bce_with_logits(&logits, &targets, &[1.0, 1.0]);
        assert!(loss.is_finite());
        assert!(grad.all_finite());
    }
}
