//! Seeded weight initialization.

use crate::matrix::Matrix;
use rand::Rng;

/// Glorot/Xavier uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suits the tanh/ReLU-ish shallow
/// networks used here and keeps early logits small.
pub fn xavier_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..=a))
}

/// Uniform initialization in `(-bound, bound)`.
pub fn uniform(rng: &mut impl Rng, rows: usize, cols: usize, bound: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..=bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = xavier_uniform(&mut rng, 100, 50);
        let a = (6.0 / 150.0f32).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= a + 1e-6));
        assert!(w.data().iter().any(|v| v.abs() > 1e-4)); // not degenerate
    }

    #[test]
    fn deterministic_per_seed() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(3), 4, 4);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(3), 4, 4);
        let c = xavier_uniform(&mut StdRng::seed_from_u64(4), 4, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = uniform(&mut rng, 10, 10, 0.1);
        assert!(w.data().iter().all(|v| v.abs() <= 0.1 + 1e-7));
    }
}
