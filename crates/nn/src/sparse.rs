//! CSR sparse matrices for hashed text features.
//!
//! The matcher's input features are hashed n-gram bags: a few hundred
//! non-zeros in a dimension of thousands. Storing them densely would make
//! the first matcher layer dominate training; CSR keeps it proportional to
//! the number of non-zeros.

use crate::matrix::Matrix;

/// Compressed sparse row matrix (`f32` values).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// Row start offsets (`rows + 1` entries).
    indptr: Vec<usize>,
    /// Column indices, row by row, strictly increasing inside a row.
    indices: Vec<u32>,
    /// Values aligned with `indices`.
    values: Vec<f32>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from per-row `(column, value)` lists. Entries in
    /// a row are sorted and duplicate columns are summed.
    pub fn from_rows(cols: usize, rows: &[Vec<(u32, f32)>]) -> Self {
        let mut out = Self::with_cols(cols);
        let mut scratch = Vec::new();
        for row in rows {
            scratch.clear();
            scratch.extend_from_slice(row);
            out.push_row_unsorted(&mut scratch);
        }
        out
    }

    /// An empty matrix with `cols` columns and no rows, ready for
    /// incremental [`push_row_unsorted`](Self::push_row_unsorted) calls —
    /// the builder shape batch featurization uses to avoid one `Vec` per
    /// row.
    pub fn with_cols(cols: usize) -> Self {
        Self { rows: 0, cols, indptr: vec![0], indices: Vec::new(), values: Vec::new() }
    }

    /// Reserves capacity for `rows` additional rows holding about `nnz`
    /// more non-zeros, so a batch of `push_row_unsorted` calls sized from
    /// a known candidate count performs no incremental growth.
    pub fn reserve(&mut self, rows: usize, nnz: usize) {
        self.indptr.reserve(rows);
        self.indices.reserve(nnz);
        self.values.reserve(nnz);
    }

    /// Appends one row from an unsorted `(column, value)` list. The caller's
    /// buffer is sorted in place (so it can be reused across rows without
    /// reallocating) and duplicate columns are summed, exactly as in
    /// [`from_rows`](Self::from_rows).
    pub fn push_row_unsorted(&mut self, entries: &mut [(u32, f32)]) {
        entries.sort_unstable_by_key(|e| e.0);
        let row_start = self.indices.len();
        for &(c, v) in entries.iter() {
            assert!((c as usize) < self.cols, "column {c} out of range {}", self.cols);
            match self.indices.last() {
                Some(&last) if self.indices.len() > row_start && last == c => {
                    *self.values.last_mut().expect("values align with indices") += v;
                }
                _ => {
                    self.indices.push(c);
                    self.values.push(v);
                }
            }
        }
        self.indptr.push(self.indices.len());
        self.rows += 1;
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(columns, values)` of row `i`.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let (s, e) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// `self × dense` — `[m,k]sparse × [k,n] → [m,n]`. Output rows fan out
    /// across the `flexer-par` thread budget for large operands; each row is
    /// the serial kernel, so results are bit-identical at any thread count.
    pub fn matmul_dense(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.cols, dense.rows(), "spmm shape mismatch");
        let n = dense.cols();
        let mut out = Matrix::zeros(self.rows, n);
        if n == 0 {
            return out;
        }
        let kernel = |i: usize, out_row: &mut [f32]| {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let d_row = dense.row(c as usize);
                for (o, &d) in out_row.iter_mut().zip(d_row) {
                    *o += v * d;
                }
            }
        };
        // nnz × n multiply-adds total; same budget rule as dense matmul.
        if self.nnz() * n >= crate::matrix::PAR_MIN_WORK {
            flexer_par::for_each_row_mut(out.data_mut(), n, kernel);
        } else {
            for (i, out_row) in out.data_mut().chunks_mut(n).enumerate() {
                kernel(i, out_row);
            }
        }
        out
    }

    /// `selfᵀ × dense` — `[m,k]ᵀ × [m,n] → [k,n]`. The weight-gradient
    /// kernel of a sparse input layer.
    pub fn transpose_matmul_dense(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.rows, dense.rows(), "spmmT shape mismatch");
        let n = dense.cols();
        let mut out = Matrix::zeros(self.cols, n);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let d_row = dense.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let out_row = out.row_mut(c as usize);
                for (o, &d) in out_row.iter_mut().zip(d_row) {
                    *o += v * d;
                }
            }
        }
        out
    }

    /// Gathers rows into a new sparse matrix.
    pub fn select_rows(&self, rows: &[usize]) -> SparseMatrix {
        let picked: Vec<Vec<(u32, f32)>> = rows
            .iter()
            .map(|&i| {
                let (cols, vals) = self.row(i);
                cols.iter().copied().zip(vals.iter().copied()).collect()
            })
            .collect();
        SparseMatrix::from_rows(self.cols, &picked)
    }

    /// Densifies (tests / tiny inputs only).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                out.set(i, c as usize, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        SparseMatrix::from_rows(
            4,
            &[
                vec![(0, 1.0), (2, 2.0)],
                vec![],
                vec![(3, -1.0), (1, 0.5), (3, 0.5)], // dup col 3 merges to -0.5
            ],
        )
    }

    #[test]
    fn construction_sorts_and_merges() {
        let s = sample();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.nnz(), 4);
        let (cols, vals) = s.row(2);
        assert_eq!(cols, &[1, 3]);
        assert_eq!(vals, &[0.5, -0.5]);
        let (cols, _) = s.row(1);
        assert!(cols.is_empty());
    }

    #[test]
    fn spmm_matches_dense() {
        let s = sample();
        let d = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f32 * 0.25 - 1.0);
        let sparse_out = s.matmul_dense(&d);
        let dense_out = s.to_dense().matmul(&d);
        for (a, b) in sparse_out.data().iter().zip(dense_out.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn spmm_t_matches_dense() {
        let s = sample();
        let d = Matrix::from_fn(3, 2, |i, j| (i + j) as f32);
        let sparse_out = s.transpose_matmul_dense(&d);
        let dense_out = s.to_dense().matmul_transpose_a(&d);
        for (a, b) in sparse_out.data().iter().zip(dense_out.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn select_rows_preserves_content() {
        let s = sample();
        let sel = s.select_rows(&[2, 0]);
        assert_eq!(sel.rows(), 2);
        assert_eq!(sel.row(0), s.row(2));
        assert_eq!(sel.row(1), s.row(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_panics() {
        let _ = SparseMatrix::from_rows(2, &[vec![(5, 1.0)]]);
    }

    #[test]
    fn empty_matrix() {
        let s = SparseMatrix::from_rows(3, &[]);
        assert_eq!(s.rows(), 0);
        assert_eq!(s.nnz(), 0);
        let d = Matrix::zeros(3, 2);
        assert_eq!(s.matmul_dense(&d).rows(), 0);
    }

    #[test]
    fn incremental_builder_matches_from_rows() {
        let rows = vec![
            vec![(3u32, 1.0f32), (1, 2.0), (3, 0.5)], // unsorted + duplicate
            vec![],
            vec![(0, -1.0), (4, 4.0)],
            vec![(4, 1.0)], // same leading column as previous row's tail
        ];
        let reference = SparseMatrix::from_rows(5, &rows);
        let mut built = SparseMatrix::with_cols(5);
        let mut scratch = Vec::new();
        for row in &rows {
            scratch.clear();
            scratch.extend_from_slice(row);
            built.push_row_unsorted(&mut scratch);
        }
        assert_eq!(built, reference);
        assert_eq!(built.rows(), 4);
        assert_eq!(built.row(0), (&[1u32, 3][..], &[2.0f32, 1.5][..]));
        assert_eq!(built.row(1), (&[][..], &[][..]));
        // Row boundaries must not merge: row 3 starts with the same column
        // row 2 ended on.
        assert_eq!(built.row(2), (&[0u32, 4][..], &[-1.0f32, 4.0][..]));
        assert_eq!(built.row(3), (&[4u32][..], &[1.0f32][..]));
    }
}
