//! Dense row-major `f32` matrices with the handful of kernels the
//! matcher and GNN need. Loops are ordered `i,k,j` so LLVM vectorizes the
//! inner accumulation.
//!
//! Every matmul variant is row-blocked across the `flexer-par` thread
//! budget when the operation is large enough to amortize fan-out. Each
//! output row is produced by exactly the serial per-row kernel, so results
//! are **bit-identical** for any thread count (including the `parallel`
//! feature being disabled).

/// Below this many fused multiply-adds a matmul (dense or sparse) stays on
/// the calling thread: fan-out overhead would exceed the work.
pub(crate) const PAR_MIN_WORK: usize = 1 << 20;

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a flat row-major buffer; panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Builds by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes to an all-zero `rows × cols` matrix, reusing the existing
    /// allocation. The scratch-reuse primitive of the serving hot path.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// [`reset`](Matrix::reset) for callers that overwrite every element:
    /// reshapes without zeroing the reused prefix, so a warm steady-state
    /// call skips the full-matrix memset. Stale values from the previous
    /// use stay visible until written — only use when the follow-up kernel
    /// provably stores to every element.
    pub fn reset_overwrite(&mut self, rows: usize, cols: usize) {
        let n = rows * cols;
        self.rows = rows;
        self.cols = cols;
        if self.data.len() > n {
            self.data.truncate(n);
        } else {
            self.data.resize(n, 0.0);
        }
    }

    /// Consumes the matrix, returning its flat row-major buffer so callers
    /// can keep the allocation alive across reshapes.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// `self × other` — `[m,k] × [k,n] → [m,n]`. Output rows are computed
    /// independently and fanned out across threads for large operands.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] written into a caller-owned output, which is
    /// resized and zeroed (allocation reused) — the blocked-batch entry
    /// the serving tier drives. Each output row is produced by exactly the
    /// serial per-row kernel, so results are bit-identical to `matmul` at
    /// any thread count.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        out.reset(self.rows, other.cols);
        if other.cols == 0 {
            return;
        }
        let kernel = |i: usize, out_row: &mut [f32]| {
            for (k, &aik) in self.row(i).iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        };
        if self.rows * self.cols * other.cols >= PAR_MIN_WORK {
            flexer_par::for_each_row_mut(&mut out.data, other.cols, kernel);
        } else {
            for (i, out_row) in out.data.chunks_mut(other.cols).enumerate() {
                kernel(i, out_row);
            }
        }
    }

    /// `self × otherᵀ` — `[m,k] × [n,k]ᵀ → [m,n]`. Used by backprop to
    /// compute input gradients without materializing transposes.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_transpose_b shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        if other.rows == 0 {
            return out;
        }
        let kernel = |i: usize, out_row: &mut [f32]| {
            let a_row = self.row(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        };
        if self.rows * self.cols * other.rows >= PAR_MIN_WORK {
            flexer_par::for_each_row_mut(&mut out.data, other.rows, kernel);
        } else {
            for (i, out_row) in out.data.chunks_mut(other.rows).enumerate() {
                kernel(i, out_row);
            }
        }
        out
    }

    /// `selfᵀ × other` — `[m,k]ᵀ × [m,n] → [k,n]`. Used by backprop to
    /// compute weight gradients. Parallelized over *output* rows so each
    /// accumulator is owned by one thread; the per-element accumulation
    /// order (ascending batch index) matches the serial kernel exactly.
    pub fn matmul_transpose_a(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_transpose_a shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        if other.cols == 0 {
            return out;
        }
        let kernel = |k: usize, out_row: &mut [f32]| {
            for i in 0..self.rows {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let b_row = other.row(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        };
        if self.rows * self.cols * other.cols >= PAR_MIN_WORK {
            flexer_par::for_each_row_mut(&mut out.data, other.cols, kernel);
        } else {
            for (k, out_row) in out.data.chunks_mut(other.cols).enumerate() {
                kernel(k, out_row);
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Adds a row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for i in 0..self.rows {
            for (v, &b) in self.row_mut(i).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Element-wise `self += alpha * other`.
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.data.len(), other.data.len(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise multiply by a scalar.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Concatenates matrices horizontally (same row count).
    pub fn hconcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hconcat of nothing");
        let rows = parts[0].rows;
        for p in parts {
            assert_eq!(p.rows, rows, "hconcat row mismatch");
        }
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let mut off = 0;
            for p in parts {
                out.row_mut(i)[off..off + p.cols].copy_from_slice(p.row(i));
                off += p.cols;
            }
        }
        out
    }

    /// Splits the matrix horizontally into slices of the given widths,
    /// returning owned pieces. Widths must sum to `cols`.
    pub fn hsplit(&self, widths: &[usize]) -> Vec<Matrix> {
        assert_eq!(widths.iter().sum::<usize>(), self.cols, "hsplit widths must sum to cols");
        let mut out: Vec<Matrix> = widths.iter().map(|&w| Matrix::zeros(self.rows, w)).collect();
        for i in 0..self.rows {
            let mut off = 0;
            for (part, &w) in out.iter_mut().zip(widths) {
                part.row_mut(i).copy_from_slice(&self.row(i)[off..off + w]);
                off += w;
            }
        }
        out
    }

    /// Appends one row (online/ingest growth of a row-major buffer).
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "push_row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Stacks matrices vertically (same column count).
    pub fn vconcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vconcat of nothing");
        let cols = parts[0].cols;
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.data.len()).sum());
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.cols, cols, "vconcat column mismatch");
            data.extend_from_slice(&p.data);
            rows += p.rows;
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Gathers the given rows into a new matrix.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (dst, &src) in rows.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Whether all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Squared L2 distance between two rows of (possibly different)
    /// matrices with equal column counts.
    pub fn row_l2_sq(a: &Matrix, i: usize, b: &Matrix, j: usize) -> f32 {
        debug_assert_eq!(a.cols, b.cols);
        a.row(i).iter().zip(b.row(j)).map(|(&x, &y)| (x - y) * (x - y)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches_matmul() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        // Stale shape and contents must be fully overwritten.
        let mut out = m(1, 4, &[9.0, 9.0, 9.0, 9.0]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // Reuse again with a different right-hand side.
        let c = m(3, 1, &[1.0, 1.0, 1.0]);
        a.matmul_into(&c, &mut out);
        assert_eq!(out.data(), &[6.0, 15.0]);
    }

    #[test]
    fn reset_and_into_vec_roundtrip_capacity() {
        let mut x = Matrix::zeros(2, 2);
        x.set(1, 1, 3.0);
        x.reset(1, 3);
        assert_eq!((x.rows(), x.cols()), (1, 3));
        assert_eq!(x.data(), &[0.0, 0.0, 0.0]);
        let buf = x.into_vec();
        assert_eq!(buf.len(), 3);
        assert!(buf.capacity() >= 4, "reset must keep the allocation");
    }

    #[test]
    fn identity_is_neutral() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = m(2, 3, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = m(4, 3, &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 0.0, 1.0, 2.0, 2.0, 2.0]);
        // a × bᵀ
        let direct = a.matmul_transpose_b(&b);
        let via_t = a.matmul(&b.transpose());
        for (x, y) in direct.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        // aᵀ × c
        let c = m(2, 4, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let direct = a.matmul_transpose_a(&c);
        let via_t = a.transpose().matmul(&c);
        for (x, y) in direct.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn bias_broadcast() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn hconcat_hsplit_roundtrip() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 1, &[9.0, 8.0]);
        let cat = Matrix::hconcat(&[&a, &b]);
        assert_eq!(cat.cols(), 3);
        assert_eq!(cat.row(0), &[1.0, 2.0, 9.0]);
        let parts = cat.hsplit(&[2, 1]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn select_rows_gathers() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[1.0, 1.0, 1.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[1.5, 2.5, 3.5]);
        a.scale(2.0);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn push_row_and_vconcat_grow_row_major() {
        let mut a = m(1, 2, &[1.0, 2.0]);
        a.push_row(&[3.0, 4.0]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        let b = m(1, 2, &[5.0, 6.0]);
        let cat = Matrix::vconcat(&[&a, &b]);
        assert_eq!(cat.rows(), 3);
        assert_eq!(cat.row(2), &[5.0, 6.0]);
        assert_eq!(cat.row(0), a.row(0));
    }

    #[test]
    #[should_panic(expected = "push_row length mismatch")]
    fn push_row_checks_width() {
        let mut a = Matrix::zeros(1, 3);
        a.push_row(&[1.0]);
    }

    #[test]
    fn row_l2_sq() {
        let a = m(1, 2, &[0.0, 0.0]);
        let b = m(1, 2, &[3.0, 4.0]);
        assert_eq!(Matrix::row_l2_sq(&a, 0, &b, 0), 25.0);
    }

    #[test]
    fn norm_and_finite() {
        let a = m(1, 2, &[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!(a.all_finite());
        let bad = m(1, 1, &[f32::NAN]);
        assert!(!bad.all_finite());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
