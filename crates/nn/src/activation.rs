//! Activation functions and their backward passes.

use crate::matrix::Matrix;

/// In-place ReLU.
pub fn relu_inplace(x: &mut Matrix) {
    for v in x.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// ReLU backward: zeroes gradient entries where the *forward output* was
/// zero (equivalently where the input was non-positive).
pub fn relu_backward_inplace(grad: &mut Matrix, forward_output: &Matrix) {
    debug_assert_eq!(grad.rows(), forward_output.rows());
    debug_assert_eq!(grad.cols(), forward_output.cols());
    for (g, &y) in grad.data_mut().iter_mut().zip(forward_output.data()) {
        if y <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Numerically stable sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Row-wise numerically stable softmax; returns a new matrix.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        relu_inplace(&mut m);
        assert_eq!(m.data(), &[0.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let y = Matrix::from_vec(1, 4, vec![0.0, 0.0, 0.5, 2.0]);
        let mut g = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        relu_backward_inplace(&mut g, &y);
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn sigmoid_extremes_are_stable() {
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 100.0, 100.0, 100.0]);
        let p = softmax_rows(&logits);
        for i in 0..2 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // equal logits → uniform
        assert!((p.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
        // ordering preserved
        assert!(p.get(0, 2) > p.get(0, 1) && p.get(0, 1) > p.get(0, 0));
    }

    #[test]
    fn softmax_handles_large_logits() {
        let logits = Matrix::from_vec(1, 2, vec![1e4, -1e4]);
        let p = softmax_rows(&logits);
        assert!(p.all_finite());
        assert!((p.get(0, 0) - 1.0).abs() < 1e-6);
    }
}
