//! Cache-aware packed matmul kernels for the dense forward path.
//!
//! The naive `Matrix::matmul_into` streams the n-wide output row through
//! memory once per k iteration; at GNN shapes (m up to a few thousand,
//! k/n 32–384) that read-modify-write traffic dominates the forward. The
//! kernels here fix it with three moves, none of which change a single
//! float bit:
//!
//! - **Packing**: the B operand (layer weights, reused across every row
//!   of every batch) is transposed once into 8-column panels —
//!   [`PackedB`] — so the inner loop reads one contiguous 8-wide strip
//!   per k. Packing happens at layer construction / snapshot load and
//!   after each optimizer step, never per call.
//! - **Register blocking**: micro-kernels compute 4 output rows × 8
//!   columns per inner loop, keeping 32 accumulators in registers for
//!   the whole k-fold — the output is touched once per tile instead of
//!   once per k. Each output element's k-fold stays a single chain in
//!   ascending k order (the same discipline `flexer-ann` uses for
//!   `l2_sq_x4`). The naive kernel's `a[i][k] == 0.0` skip needs no
//!   branch here: the accumulator starts at `+0.0` and round-to-nearest
//!   addition can only produce `-0.0` from `(-0.0) + (-0.0)`, so the
//!   chain never sits at `-0.0` — which makes `acc += 0.0 * s` (the
//!   `±0.0` product of a finite weight) a bitwise no-op, exactly like
//!   the skip. The branch-free inner loop is what lets it vectorize.
//!   (A non-finite *weight* would break this equivalence — `0.0 × ∞` is
//!   NaN — but trained layers are finite by construction; inputs may be
//!   anything.)
//! - **Fused epilogue**: bias-add and ReLU are applied as each 4×4 tile
//!   is written back ([`Epilogue`]), eliminating the separate
//!   `add_row_broadcast` + `relu_inplace` passes over the output. Both
//!   are elementwise, so fusion is bit-exact; ReLU is `if v < 0.0`
//!   (never `max`) to preserve NaN and `-0.0` exactly like
//!   `activation::relu_inplace`.
//!
//! Rows are independent, so the kernels fan out over 4-row blocks with
//! `flexer_par::for_each_row_mut` — the same splitting the naive kernel
//! uses, bit-identical at any thread count.
//!
//! A process-wide toggle ([`set_packed_kernels`]) routes
//! [`dense_forward_into`] back to the exact pre-packing sequence
//! (`matmul_into` → `add_row_broadcast` → `relu_inplace`). Differential
//! tests and the `kernels` bench bin use it to prove bit-identity and
//! measure before/after on the same live service.

use crate::linear::Linear;
use crate::matrix::{Matrix, PAR_MIN_WORK};
use std::sync::atomic::{AtomicBool, Ordering};

static PACKED_ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables the packed kernels. When disabled,
/// [`dense_forward_into`] falls back to the naive unfused sequence the
/// packed path replaced. Safe to flip at any time: both paths produce
/// bit-identical results, so in-flight work is unaffected.
pub fn set_packed_kernels(enabled: bool) {
    PACKED_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the packed kernels are currently enabled (the default).
pub fn packed_kernels_enabled() -> bool {
    PACKED_ENABLED.load(Ordering::Relaxed)
}

/// Column-panel width of [`PackedB`]: the register tile is 4 rows ×
/// `PANEL` columns.
const PANEL: usize = 8;

/// The B operand of a matmul, repacked into [`PANEL`]-column panels.
///
/// Panel `p` holds columns `8p..8p+8` (zero-padded past `cols`), laid
/// out k-major: element `(k, c)` of panel `p` lives at
/// `p * rows * 8 + k * 8 + c`. The micro-kernel's k-loop therefore
/// reads one contiguous 8-wide strip per step instead of striding
/// through a `rows × cols` row-major matrix.
#[derive(Debug, Clone)]
pub struct PackedB {
    rows: usize,
    cols: usize,
    panels: Vec<f32>,
}

impl PackedB {
    /// Packs `b` (the right-hand matmul operand, e.g. a layer's weight
    /// matrix) into column panels. O(rows·cols); done once per layer
    /// construction or optimizer step, amortized across every forward.
    pub fn pack(b: &Matrix) -> Self {
        let mut packed = PackedB { rows: 0, cols: 0, panels: Vec::new() };
        packed.repack(b);
        packed
    }

    /// Re-packs in place after the source matrix changed (an optimizer
    /// step); reuses the panel allocation.
    pub fn repack(&mut self, b: &Matrix) {
        self.rows = b.rows();
        self.cols = b.cols();
        let n_panels = self.cols.div_ceil(PANEL);
        self.panels.clear();
        self.panels.reserve(n_panels * self.rows * PANEL);
        for p in 0..n_panels {
            for k in 0..self.rows {
                let row = b.row(k);
                for c in 0..PANEL {
                    let j = p * PANEL + c;
                    self.panels.push(if j < self.cols { row[j] } else { 0.0 });
                }
            }
        }
    }

    /// Rows of the original (unpacked) matrix — the k dimension.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the original (unpacked) matrix — the n dimension.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// What to do with each output element as it is written back.
///
/// Fusing the bias/activation pass into the matmul write-back removes a
/// full read-modify-write sweep over the output. All variants are
/// elementwise, so the fused result is bit-identical to running the
/// separate passes.
#[derive(Debug, Clone, Copy)]
pub enum Epilogue<'a> {
    /// Plain matmul: write the accumulator as-is.
    None,
    /// `out[i][j] = acc + bias[j]` — a fused `add_row_broadcast`.
    Bias(&'a [f32]),
    /// `Bias` followed by ReLU (`if v < 0.0 { 0.0 }`), matching
    /// `activation::relu_inplace` bit-for-bit (NaN and `-0.0` pass
    /// through untouched).
    BiasRelu(&'a [f32]),
}

/// `out = a · b` with the epilogue fused into the write-back.
///
/// Bit-identical to `a.matmul_into(b_unpacked, out)` followed by the
/// epilogue's separate passes, at any thread count: each output
/// element's k-fold is one accumulation chain in ascending k order, and
/// the naive kernel's `a[i][k] == 0.0` skip is reproduced without a
/// branch (see the module docs — an accumulator that starts at `+0.0`
/// never sits at `-0.0`, so adding a finite weight's `±0.0` product
/// cannot change its bits).
pub fn matmul_packed_into(a: &Matrix, b: &PackedB, epilogue: Epilogue<'_>, out: &mut Matrix) {
    let (m, k) = (a.rows(), a.cols());
    assert_eq!(k, b.rows, "matmul shape mismatch");
    let n = b.cols;
    match epilogue {
        Epilogue::Bias(bias) | Epilogue::BiasRelu(bias) => {
            assert_eq!(bias.len(), n, "bias length must match output columns");
        }
        Epilogue::None => {}
    }
    // `write_tile` only stores (never reads `dst`), and the block + tail
    // kernels together cover every output row at full panel width, so the
    // reshape can skip the zeroing memset the naive accumulate-in-place
    // kernel needs.
    out.reset_overwrite(m, n);
    if n == 0 {
        return;
    }
    let a_data = a.data();
    let panels = &b.panels[..];
    let n_panels = n.div_ceil(PANEL);
    let panel_len = k * PANEL;

    // One 4-row block: 32 register accumulators held for the whole
    // k-fold, 4 A loads + one contiguous 8-wide B strip per k, no
    // branches in the inner loop.
    let block_kernel = |blk: usize, out_rows: &mut [f32]| {
        let r0 = blk * 4;
        let (a0, a1, a2, a3) = (
            &a_data[r0 * k..(r0 + 1) * k],
            &a_data[(r0 + 1) * k..(r0 + 2) * k],
            &a_data[(r0 + 2) * k..(r0 + 3) * k],
            &a_data[(r0 + 3) * k..(r0 + 4) * k],
        );
        for p in 0..n_panels {
            let panel = &panels[p * panel_len..(p + 1) * panel_len];
            let mut acc = [[0.0f32; PANEL]; 4];
            for (((&v0, &v1), (&v2, &v3)), s) in a0
                .iter()
                .zip(a1.iter())
                .zip(a2.iter().zip(a3.iter()))
                .zip(panel.chunks_exact(PANEL))
            {
                for c in 0..PANEL {
                    acc[0][c] += v0 * s[c];
                    acc[1][c] += v1 * s[c];
                    acc[2][c] += v2 * s[c];
                    acc[3][c] += v3 * s[c];
                }
            }
            let j0 = p * PANEL;
            let width = (n - j0).min(PANEL);
            for (r, acc_row) in acc.iter().enumerate() {
                let dst = &mut out_rows[r * n + j0..r * n + j0 + width];
                write_tile(dst, &acc_row[..width], j0, epilogue);
            }
        }
    };

    // Tail rows (m % 4): a 1×8 kernel over the same panels.
    let row_kernel = |i: usize, out_row: &mut [f32]| {
        let arow = &a_data[i * k..(i + 1) * k];
        for p in 0..n_panels {
            let panel = &panels[p * panel_len..(p + 1) * panel_len];
            let mut acc = [0.0f32; PANEL];
            for (&v, s) in arow.iter().zip(panel.chunks_exact(PANEL)) {
                for c in 0..PANEL {
                    acc[c] += v * s[c];
                }
            }
            let j0 = p * PANEL;
            let width = (n - j0).min(PANEL);
            write_tile(&mut out_row[j0..j0 + width], &acc[..width], j0, epilogue);
        }
    };

    let m4 = m - m % 4;
    let (blocks, tail) = out.data_mut().split_at_mut(m4 * n);
    if m * k * n >= PAR_MIN_WORK && m4 > 0 {
        flexer_par::for_each_row_mut(blocks, 4 * n, block_kernel);
    } else {
        for (blk, out_rows) in blocks.chunks_mut(4 * n).enumerate() {
            block_kernel(blk, out_rows);
        }
    }
    for (t, out_row) in tail.chunks_mut(n).enumerate() {
        row_kernel(m4 + t, out_row);
    }
}

#[inline(always)]
fn write_tile(dst: &mut [f32], acc: &[f32], j0: usize, epilogue: Epilogue<'_>) {
    match epilogue {
        Epilogue::None => dst.copy_from_slice(acc),
        Epilogue::Bias(bias) => {
            let bs = &bias[j0..j0 + dst.len()];
            for ((d, &a), &b) in dst.iter_mut().zip(acc).zip(bs) {
                *d = a + b;
            }
        }
        Epilogue::BiasRelu(bias) => {
            let bs = &bias[j0..j0 + dst.len()];
            for ((d, &a), &b) in dst.iter_mut().zip(acc).zip(bs) {
                let v = a + b;
                *d = if v < 0.0 { 0.0 } else { v };
            }
        }
    }
}

/// A full dense layer forward — `out = act(x · w + b)` — through the
/// packed kernels, or through the pre-packing naive sequence when
/// [`set_packed_kernels`]`(false)` is in effect. `pack` must be the
/// packing of `layer.w` (owners repack after every optimizer step).
pub fn dense_forward_into(
    x: &Matrix,
    layer: &Linear,
    pack: &PackedB,
    relu: bool,
    out: &mut Matrix,
) {
    debug_assert_eq!(pack.rows, layer.w.rows(), "stale pack: rows");
    debug_assert_eq!(pack.cols, layer.w.cols(), "stale pack: cols");
    if packed_kernels_enabled() {
        let epilogue = if relu { Epilogue::BiasRelu(&layer.b) } else { Epilogue::Bias(&layer.b) };
        matmul_packed_into(x, pack, epilogue, out);
    } else {
        x.matmul_into(&layer.w, out);
        out.add_row_broadcast(&layer.b);
        if relu {
            crate::activation::relu_inplace(out);
        }
    }
}

/// Fused bias-add + optional ReLU over a freshly materialized matmul
/// output: one pass over the data instead of `add_row_broadcast` +
/// `relu_inplace`'s two. Bit-identical to the separate passes. Used by
/// the sparse input layer, whose matmul has no dense B to pack.
pub fn bias_relu_inplace(x: &mut Matrix, bias: &[f32], relu: bool) {
    let cols = x.cols();
    assert_eq!(bias.len(), cols, "bias length must match columns");
    if cols == 0 {
        return;
    }
    for row in x.data_mut().chunks_exact_mut(cols) {
        if relu {
            for (v, &b) in row.iter_mut().zip(bias) {
                let y = *v + b;
                *v = if y < 0.0 { 0.0 } else { y };
            }
        } else {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }
}

/// Splits a flat row-major buffer into a 4-row-aligned prefix and a
/// remainder, the block shape shared by the packed matmul kernels and
/// `flexer-ann`'s blocked distance scans. `dim` must be non-zero and
/// divide `data.len()`.
pub fn split_rows4(data: &[f32], dim: usize) -> (&[f32], &[f32]) {
    debug_assert!(dim > 0 && data.len() % dim == 0, "data must be whole rows");
    let rows = data.len() / dim;
    data.split_at((rows - rows % 4) * dim)
}

/// Views one 4-row block (as produced by [`split_rows4`]) as four
/// row slices.
pub fn block4(block: &[f32], dim: usize) -> [&[f32]; 4] {
    debug_assert_eq!(block.len(), 4 * dim, "block must hold exactly four rows");
    [&block[..dim], &block[dim..2 * dim], &block[2 * dim..3 * dim], &block[3 * dim..]]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic value stream with `0.0` and `-0.0` mixed in to
    /// exercise the branch-free reproduction of the naive kernel's
    /// zero-skip (the same LCG `flexer-ann` uses for its blocked scan
    /// differentials).
    fn lcg_values(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                match (s >> 33) % 7 {
                    0 => 0.0,
                    1 => -0.0,
                    _ => ((s >> 11) as f32 / (1u64 << 53) as f32) * 4.0 - 2.0,
                }
            })
            .collect()
    }

    fn reference(a: &Matrix, b: &Matrix, epilogue: Epilogue<'_>) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(b, &mut out);
        match epilogue {
            Epilogue::None => {}
            Epilogue::Bias(bias) => out.add_row_broadcast(bias),
            Epilogue::BiasRelu(bias) => {
                out.add_row_broadcast(bias);
                crate::activation::relu_inplace(&mut out);
            }
        }
        out
    }

    fn assert_bits_eq(got: &Matrix, want: &Matrix, ctx: &str) {
        assert_eq!((got.rows(), got.cols()), (want.rows(), want.cols()), "{ctx}: shape");
        for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: element {i}: {g} vs {w}");
        }
    }

    #[test]
    fn packed_matmul_is_bit_identical_across_ragged_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 3),
            (2, 3, 2),
            (3, 5, 5),
            (4, 4, 4),
            (5, 9, 7),
            (6, 17, 12),
            (7, 1, 9),
            (8, 32, 6),
            (9, 13, 11),
            (11, 96, 48),
            (16, 144, 48),
        ] {
            let a = Matrix::from_vec(m, k, lcg_values(m as u64 * 1000 + n as u64, m * k));
            let b = Matrix::from_vec(k, n, lcg_values(k as u64 * 77 + 5, k * n));
            let bias = lcg_values(n as u64 + 3, n);
            let pack = PackedB::pack(&b);
            for (name, epi) in [
                ("none", Epilogue::None),
                ("bias", Epilogue::Bias(&bias)),
                ("bias_relu", Epilogue::BiasRelu(&bias)),
            ] {
                let mut got = Matrix::zeros(0, 0);
                matmul_packed_into(&a, &pack, epi, &mut got);
                let want = reference(&a, &b, epi);
                assert_bits_eq(&got, &want, &format!("{m}x{k}x{n}/{name}"));
            }
        }
    }

    #[test]
    fn packed_matmul_is_bit_identical_at_any_thread_count() {
        // Big enough to cross PAR_MIN_WORK and fan out.
        let (m, k, n) = (160, 96, 96);
        let a = Matrix::from_vec(m, k, lcg_values(42, m * k));
        let b = Matrix::from_vec(k, n, lcg_values(43, k * n));
        let bias = lcg_values(44, n);
        let pack = PackedB::pack(&b);
        let want = reference(&a, &b, Epilogue::BiasRelu(&bias));
        for threads in [1, 2, 3, 5, 8] {
            let got = flexer_par::with_threads(threads, || {
                let mut out = Matrix::zeros(0, 0);
                matmul_packed_into(&a, &pack, Epilogue::BiasRelu(&bias), &mut out);
                out
            });
            assert_bits_eq(&got, &want, &format!("threads={threads}"));
        }
    }

    #[test]
    fn repack_tracks_weight_updates() {
        let b0 = Matrix::from_vec(3, 5, lcg_values(7, 15));
        let b1 = Matrix::from_vec(3, 5, lcg_values(8, 15));
        let a = Matrix::from_vec(4, 3, lcg_values(9, 12));
        let mut pack = PackedB::pack(&b0);
        pack.repack(&b1);
        let mut got = Matrix::zeros(0, 0);
        matmul_packed_into(&a, &pack, Epilogue::None, &mut got);
        assert_bits_eq(&got, &reference(&a, &b1, Epilogue::None), "repack");
    }

    #[test]
    fn fused_epilogue_handles_nan_and_negative_zero_like_relu_inplace() {
        // A row of zeros makes every k-fold term a `±0.0` product (the
        // naive kernel skips them outright), so the output is exactly
        // bias (then ReLU'd); NaN bias must survive the ReLU.
        let a = Matrix::zeros(2, 3);
        let b = Matrix::from_vec(3, 4, lcg_values(11, 12));
        let bias = vec![f32::NAN, -0.0, -1.5, 2.0];
        let pack = PackedB::pack(&b);
        let mut got = Matrix::zeros(0, 0);
        matmul_packed_into(&a, &pack, Epilogue::BiasRelu(&bias), &mut got);
        let want = reference(&a, &b, Epilogue::BiasRelu(&bias));
        for (g, w) in got.data().iter().zip(want.data()) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
        assert!(got.get(0, 0).is_nan(), "NaN must pass through the fused ReLU");
        // 0.0 + -0.0 is +0.0 in IEEE 754; both paths must agree on the bits.
        assert_eq!(got.get(0, 1).to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn empty_output_and_zero_k_edge_cases() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        let bias = vec![1.0, -2.0, 3.0, -4.0];
        let pack = PackedB::pack(&b);
        let mut got = Matrix::zeros(0, 0);
        // k == 0: output is pure epilogue over zeros, exactly like naive.
        matmul_packed_into(&a, &pack, Epilogue::BiasRelu(&bias), &mut got);
        assert_bits_eq(&got, &reference(&a, &b, Epilogue::BiasRelu(&bias)), "k=0");
        // n == 0: empty output.
        let b = Matrix::zeros(5, 0);
        let a = Matrix::from_vec(2, 5, lcg_values(13, 10));
        let mut got = Matrix::zeros(7, 7);
        matmul_packed_into(&a, &PackedB::pack(&b), Epilogue::None, &mut got);
        assert_eq!((got.rows(), got.cols()), (2, 0));
    }

    #[test]
    fn bias_relu_inplace_matches_separate_passes() {
        let cols = 7;
        let bias = lcg_values(21, cols);
        let mut fused = Matrix::from_vec(5, cols, lcg_values(22, 5 * cols));
        let mut separate = fused.clone();
        bias_relu_inplace(&mut fused, &bias, true);
        separate.add_row_broadcast(&bias);
        crate::activation::relu_inplace(&mut separate);
        assert_bits_eq(&fused, &separate, "bias_relu fused");

        let mut fused = Matrix::from_vec(3, cols, lcg_values(23, 3 * cols));
        let mut separate = fused.clone();
        bias_relu_inplace(&mut fused, &bias, false);
        separate.add_row_broadcast(&bias);
        assert_bits_eq(&fused, &separate, "bias only");
    }

    #[test]
    fn toggle_routes_dense_forward_through_both_paths_identically() {
        let layer = Linear {
            w: Matrix::from_vec(6, 5, lcg_values(31, 30)),
            b: lcg_values(32, 5),
            grad_w: Matrix::zeros(6, 5),
            grad_b: vec![0.0; 5],
        };
        let pack = PackedB::pack(&layer.w);
        let x = Matrix::from_vec(9, 6, lcg_values(33, 54));
        let mut packed = Matrix::zeros(0, 0);
        let mut naive = Matrix::zeros(0, 0);
        assert!(packed_kernels_enabled());
        dense_forward_into(&x, &layer, &pack, true, &mut packed);
        set_packed_kernels(false);
        dense_forward_into(&x, &layer, &pack, true, &mut naive);
        set_packed_kernels(true);
        assert_bits_eq(&packed, &naive, "toggle differential");
    }

    #[test]
    fn row_block_helpers_split_cleanly() {
        let data: Vec<f32> = (0..30).map(|i| i as f32).collect();
        let (blocks, tail) = split_rows4(&data, 3);
        assert_eq!(blocks.len(), 24);
        assert_eq!(tail.len(), 6);
        let rows = block4(&blocks[..12], 3);
        assert_eq!(rows[0], &[0.0, 1.0, 2.0]);
        assert_eq!(rows[3], &[9.0, 10.0, 11.0]);
    }
}
