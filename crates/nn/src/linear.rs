//! Fully connected layer with manual backprop, supporting dense and sparse
//! (CSR) inputs.

use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use crate::optim::Optimizer;
use crate::sparse::SparseMatrix;
use rand::Rng;

/// `y = x·W + b` with accumulated gradients.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weights, `[in, out]`.
    pub w: Matrix,
    /// Bias, `[out]`.
    pub b: Vec<f32>,
    /// Accumulated weight gradient.
    pub grad_w: Matrix,
    /// Accumulated bias gradient.
    pub grad_b: Vec<f32>,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(rng: &mut impl Rng, in_dim: usize, out_dim: usize) -> Self {
        Self {
            w: xavier_uniform(rng, in_dim, out_dim),
            b: vec![0.0; out_dim],
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: vec![0.0; out_dim],
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass for a dense batch `[n, in] → [n, out]`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        self.forward_into(x, &mut y);
        y
    }

    /// [`Linear::forward`] written into a caller-owned output (resized,
    /// allocation reused) — the blocked-batch entry for hot serving paths
    /// that walk many batches through the same layer. Bit-identical to
    /// `forward` at any thread count.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.w, out);
        out.add_row_broadcast(&self.b);
    }

    /// Forward pass for a sparse batch.
    pub fn forward_sparse(&self, x: &SparseMatrix) -> Matrix {
        let mut y = x.matmul_dense(&self.w);
        y.add_row_broadcast(&self.b);
        y
    }

    /// Backward pass: accumulates `grad_w`/`grad_b` from the batch and
    /// returns the gradient w.r.t. the input.
    pub fn backward(&mut self, x: &Matrix, grad_out: &Matrix) -> Matrix {
        self.grad_w.add_scaled(&x.matmul_transpose_a(grad_out), 1.0);
        accumulate_bias(&mut self.grad_b, grad_out);
        grad_out.matmul_transpose_b(&self.w)
    }

    /// Backward pass for a sparse input; the input gradient is not needed
    /// (the hashed features are leaves), so only parameter gradients are
    /// accumulated.
    pub fn backward_sparse(&mut self, x: &SparseMatrix, grad_out: &Matrix) {
        self.grad_w.add_scaled(&x.transpose_matmul_dense(grad_out), 1.0);
        accumulate_bias(&mut self.grad_b, grad_out);
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_w.scale(0.0);
        for g in &mut self.grad_b {
            *g = 0.0;
        }
    }

    /// Applies an optimizer to this layer's parameters using `slot_base` and
    /// `slot_base + 1`; returns the number of slots consumed (always 2).
    pub fn apply(&mut self, opt: &mut impl Optimizer, slot_base: usize) -> usize {
        opt.update(slot_base, self.w.data_mut(), self.grad_w.data());
        opt.update(slot_base + 1, &mut self.b, &self.grad_b);
        2
    }
}

fn accumulate_bias(grad_b: &mut [f32], grad_out: &Matrix) {
    for i in 0..grad_out.rows() {
        for (g, &d) in grad_b.iter_mut().zip(grad_out.row(i)) {
            *g += d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Linear {
        let mut rng = StdRng::seed_from_u64(42);
        Linear::new(&mut rng, 3, 2)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut l = layer();
        l.b = vec![10.0, 20.0];
        let x = Matrix::zeros(4, 3);
        let y = l.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 2));
        assert_eq!(y.row(0), &[10.0, 20.0]);
    }

    #[test]
    fn sparse_forward_matches_dense() {
        let l = layer();
        let s = SparseMatrix::from_rows(3, &[vec![(0, 1.0), (2, -1.0)], vec![(1, 2.0)]]);
        let dense = s.to_dense();
        let a = l.forward_sparse(&s);
        let b = l.forward(&dense);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    /// Finite-difference check of the analytic gradient.
    #[test]
    fn gradients_match_finite_differences() {
        let mut l = layer();
        let x = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]);
        // Loss = sum(y); dL/dy = ones.
        let ones = Matrix::from_fn(2, 2, |_, _| 1.0);
        let dx = l.backward(&x, &ones);

        let loss = |l: &Linear, x: &Matrix| -> f32 { l.forward(x).data().iter().sum() };
        let eps = 1e-3;
        // weight grad check (a few entries)
        for &(i, j) in &[(0usize, 0usize), (1, 1), (2, 0)] {
            let mut lp = l.clone();
            lp.w.set(i, j, lp.w.get(i, j) + eps);
            let mut lm = l.clone();
            lm.w.set(i, j, lm.w.get(i, j) - eps);
            let num = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
            assert!((num - l.grad_w.get(i, j)).abs() < 1e-2, "dW[{i},{j}]");
        }
        // input grad check
        for &(i, j) in &[(0usize, 0usize), (1, 2)] {
            let mut xp = x.clone();
            xp.set(i, j, xp.get(i, j) + eps);
            let mut xm = x.clone();
            xm.set(i, j, xm.get(i, j) - eps);
            let base = l.clone();
            let num = (loss(&base, &xp) - loss(&base, &xm)) / (2.0 * eps);
            assert!((num - dx.get(i, j)).abs() < 1e-2, "dX[{i},{j}]");
        }
        // bias grad: dL/db = batch size per output
        assert!((l.grad_b[0] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn sparse_backward_matches_dense_backward() {
        let mut a = layer();
        let mut b = a.clone();
        let s = SparseMatrix::from_rows(3, &[vec![(0, 1.0)], vec![(1, -2.0), (2, 0.5)]]);
        let g = Matrix::from_vec(2, 2, vec![1.0, -1.0, 0.5, 2.0]);
        a.backward_sparse(&s, &g);
        let _ = b.backward(&s.to_dense(), &g);
        for (x, y) in a.grad_w.data().iter().zip(b.grad_w.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        assert_eq!(a.grad_b, b.grad_b);
    }

    #[test]
    fn zero_grad_clears() {
        let mut l = layer();
        let x = Matrix::from_fn(1, 3, |_, _| 1.0);
        let g = Matrix::from_fn(1, 2, |_, _| 1.0);
        let _ = l.backward(&x, &g);
        assert!(l.grad_w.frobenius_norm() > 0.0);
        l.zero_grad();
        assert_eq!(l.grad_w.frobenius_norm(), 0.0);
        assert!(l.grad_b.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn training_reduces_loss_on_linear_fit() {
        // Fit y = x·[1,-1]ᵀ + 0.5 with a single layer and SGD.
        let mut rng = StdRng::seed_from_u64(7);
        let mut l = Linear::new(&mut rng, 2, 1);
        let x = Matrix::from_fn(16, 2, |i, j| ((i * 2 + j) % 5) as f32 - 2.0);
        let target: Vec<f32> = (0..16).map(|i| x.get(i, 0) - x.get(i, 1) + 0.5).collect();
        let mut opt = Sgd::new(0.05);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let y = l.forward(&x);
            let mut grad = Matrix::zeros(16, 1);
            let mut loss = 0.0;
            for (i, &t) in target.iter().enumerate() {
                let d = y.get(i, 0) - t;
                loss += d * d / 16.0;
                grad.set(i, 0, 2.0 * d / 16.0);
            }
            first.get_or_insert(loss);
            last = loss;
            l.zero_grad();
            let _ = l.backward(&x, &grad);
            opt.begin_step();
            l.apply(&mut opt, 0);
        }
        assert!(last < first.unwrap() * 0.01, "loss {last} vs {first:?}");
    }
}
