//! A dense multi-layer perceptron with ReLU between layers, manual
//! backprop, and access to the penultimate activation (the pair-embedding
//! analogue of DITTO's `[cls]` vector).

use crate::activation::relu_backward_inplace;
use crate::kernels::{dense_forward_into, PackedB};
use crate::linear::Linear;
use crate::matrix::Matrix;
use crate::optim::Optimizer;
use rand::Rng;

/// MLP shape: `input_dim → hidden[0] → … → hidden[last] → output_dim`,
/// ReLU after every layer except the output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpConfig {
    /// Input feature dimension.
    pub input_dim: usize,
    /// Hidden layer widths (may be empty for a linear model).
    pub hidden: Vec<usize>,
    /// Output dimension (e.g. 2 logits for binary matching).
    pub output_dim: usize,
}

/// The MLP itself. Each layer's weight matrix is kept packed
/// ([`PackedB`]) for the blocked forward kernels; packs are rebuilt
/// whenever [`Mlp::apply`] updates the weights.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    packs: Vec<PackedB>,
}

/// All per-layer activations of one forward pass; `post[0]` is the input,
/// `post[i]` the (post-ReLU, or raw for the last layer) output of layer `i`.
#[derive(Debug, Clone)]
pub struct MlpTrace {
    post: Vec<Matrix>,
}

impl MlpTrace {
    /// Final output (logits).
    pub fn output(&self) -> &Matrix {
        self.post.last().expect("trace always has the input")
    }

    /// Penultimate activation — the embedding layer. For a network with no
    /// hidden layers this is the input itself.
    pub fn embedding(&self) -> &Matrix {
        &self.post[self.post.len() - 2]
    }

    /// Consumes the trace, moving out `(embedding, logits)` without
    /// cloning.
    pub fn into_embedding_and_output(mut self) -> (Matrix, Matrix) {
        let output = self.post.pop().expect("trace always has the input");
        let embedding = self.post.pop().expect("trace has input + >= 1 layer output");
        (embedding, output)
    }
}

impl Mlp {
    /// Builds an MLP with Xavier initialization.
    pub fn new(rng: &mut impl Rng, config: &MlpConfig) -> Self {
        let mut dims = vec![config.input_dim];
        dims.extend_from_slice(&config.hidden);
        dims.push(config.output_dim);
        let layers: Vec<Linear> = dims.windows(2).map(|w| Linear::new(rng, w[0], w[1])).collect();
        let packs = layers.iter().map(|l| PackedB::pack(&l.w)).collect();
        Self { layers, packs }
    }

    /// Reassembles an MLP from its layers (the snapshot-import path).
    /// Panics unless consecutive layer dimensions chain.
    pub fn from_layers(layers: Vec<Linear>) -> Self {
        assert!(!layers.is_empty(), "an MLP needs at least one layer");
        for w in layers.windows(2) {
            assert_eq!(w[0].out_dim(), w[1].in_dim(), "layer dimensions must chain");
        }
        let packs = layers.iter().map(|l| PackedB::pack(&l.w)).collect();
        Self { layers, packs }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer accessor (for inspection in tests and ablations).
    pub fn layer(&self, i: usize) -> &Linear {
        &self.layers[i]
    }

    /// All layers in forward order (the snapshot-export path).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Forward pass keeping every activation for backprop.
    pub fn forward_trace(&self, x: &Matrix) -> MlpTrace {
        let mut post = Vec::with_capacity(self.layers.len() + 1);
        post.push(x.clone());
        for (i, (layer, pack)) in self.layers.iter().zip(&self.packs).enumerate() {
            let mut y = Matrix::zeros(0, 0);
            let relu = i + 1 < self.layers.len();
            dense_forward_into(post.last().expect("non-empty"), layer, pack, relu, &mut y);
            post.push(y);
        }
        MlpTrace { post }
    }

    /// Inference-only forward pass returning logits.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_trace(x).output().clone()
    }

    /// Batched inference returning `(embedding, logits)` for every input
    /// row. Rows are split into one contiguous block per available thread
    /// and each block runs the whole layer stack independently — a single
    /// fan-out for the full network instead of one per matmul. Every row is
    /// produced by the serial kernels, so the result is bit-identical to
    /// [`Mlp::forward_trace`] at any thread count.
    pub fn forward_batch(&self, x: &Matrix) -> (Matrix, Matrix) {
        let rows = x.rows();
        let blocks = flexer_par::max_threads().min(rows.max(1));
        if blocks <= 1 {
            return self.forward_trace(x).into_embedding_and_output();
        }
        let per = rows.div_ceil(blocks);
        let parts = flexer_par::parallel_map(rows.div_ceil(per), |b| {
            let (r0, r1) = (b * per, ((b + 1) * per).min(rows));
            let sub = Matrix::from_vec(
                r1 - r0,
                x.cols(),
                x.data()[r0 * x.cols()..r1 * x.cols()].to_vec(),
            );
            self.forward_trace(&sub).into_embedding_and_output()
        });
        // Blocks are contiguous row ranges in order, so stitching is two
        // flat concatenations of the moved-out buffers.
        let (emb_cols, out_cols) = (parts[0].0.cols(), parts[0].1.cols());
        let mut emb_data = Vec::with_capacity(rows * emb_cols);
        let mut out_data = Vec::with_capacity(rows * out_cols);
        for (e, o) in parts {
            emb_data.extend_from_slice(e.data());
            out_data.extend_from_slice(o.data());
        }
        (Matrix::from_vec(rows, emb_cols, emb_data), Matrix::from_vec(rows, out_cols, out_data))
    }

    /// Backward pass from `d loss / d logits`; accumulates layer gradients
    /// and returns `d loss / d input`.
    pub fn backward(&mut self, trace: &MlpTrace, grad_logits: &Matrix) -> Matrix {
        let mut grad = grad_logits.clone();
        for i in (0..self.layers.len()).rev() {
            if i + 1 < self.layers.len() {
                // Undo the ReLU applied to this layer's output.
                relu_backward_inplace(&mut grad, &trace.post[i + 1]);
            }
            grad = self.layers[i].backward(&trace.post[i], &grad);
        }
        grad
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Applies an optimizer to every layer and refreshes the weight
    /// packs; returns slots consumed.
    pub fn apply(&mut self, opt: &mut impl Optimizer, slot_base: usize) -> usize {
        let mut used = 0;
        for (l, pack) in self.layers.iter_mut().zip(&mut self.packs) {
            used += l.apply(opt, slot_base + used);
            pack.repack(&l.w);
        }
        used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::optim::{Adam, AdamConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_data() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let y = vec![0usize, 1, 1, 0];
        (x, y)
    }

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp =
            Mlp::new(&mut rng, &MlpConfig { input_dim: 5, hidden: vec![8, 3], output_dim: 2 });
        assert_eq!(mlp.n_layers(), 3);
        let x = Matrix::zeros(7, 5);
        let trace = mlp.forward_trace(&x);
        assert_eq!(trace.output().cols(), 2);
        assert_eq!(trace.embedding().cols(), 3);
        assert_eq!(trace.output().rows(), 7);
    }

    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mlp =
            Mlp::new(&mut rng, &MlpConfig { input_dim: 2, hidden: vec![8], output_dim: 2 });
        let (x, y) = xor_data();
        let mut opt = Adam::new(AdamConfig { lr: 0.05, ..Default::default() });
        for _ in 0..400 {
            let trace = mlp.forward_trace(&x);
            let (_, grad) = softmax_cross_entropy(trace.output(), &y, None);
            mlp.zero_grad();
            let _ = mlp.backward(&trace, &grad);
            opt.begin_step();
            mlp.apply(&mut opt, 0);
        }
        let out = mlp.forward(&x);
        for (i, &target) in y.iter().enumerate() {
            let pred = if out.get(i, 1) > out.get(i, 0) { 1 } else { 0 };
            assert_eq!(pred, target, "row {i}");
        }
    }

    #[test]
    fn backward_input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp =
            Mlp::new(&mut rng, &MlpConfig { input_dim: 3, hidden: vec![4], output_dim: 2 });
        let x = Matrix::from_vec(2, 3, vec![0.2, -0.4, 0.9, -1.1, 0.3, 0.7]);
        let y = [0usize, 1];
        let trace = mlp.forward_trace(&x);
        let (_, grad_logits) = softmax_cross_entropy(trace.output(), &y, None);
        let dx = mlp.backward(&trace, &grad_logits);
        let loss_of = |x: &Matrix| {
            let t = mlp.forward_trace(x);
            softmax_cross_entropy(t.output(), &y, None).0
        };
        let eps = 1e-2;
        for i in 0..2 {
            for j in 0..3 {
                let mut xp = x.clone();
                xp.set(i, j, xp.get(i, j) + eps);
                let mut xm = x.clone();
                xm.set(i, j, xm.get(i, j) - eps);
                let num = (loss_of(&xp) - loss_of(&xm)) / (2.0 * eps);
                assert!(
                    (num - dx.get(i, j)).abs() < 2e-2,
                    "dX[{i},{j}]: {num} vs {}",
                    dx.get(i, j)
                );
            }
        }
    }

    #[test]
    fn linear_model_embedding_is_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(&mut rng, &MlpConfig { input_dim: 3, hidden: vec![], output_dim: 2 });
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let trace = mlp.forward_trace(&x);
        assert_eq!(trace.embedding(), &x);
    }

    #[test]
    fn from_layers_roundtrips_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&mut rng, &MlpConfig { input_dim: 4, hidden: vec![6], output_dim: 2 });
        let rebuilt = Mlp::from_layers(mlp.layers().to_vec());
        let x = Matrix::from_fn(5, 4, |i, j| (i * 4 + j) as f32 * 0.05);
        assert_eq!(mlp.forward(&x), rebuilt.forward(&x));
    }

    #[test]
    #[should_panic(expected = "layer dimensions must chain")]
    fn from_layers_checks_dims() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Linear::new(&mut rng, 3, 4);
        let b = Linear::new(&mut rng, 5, 2);
        let _ = Mlp::from_layers(vec![a, b]);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = MlpConfig { input_dim: 4, hidden: vec![5], output_dim: 2 };
        let a = Mlp::new(&mut StdRng::seed_from_u64(9), &cfg);
        let b = Mlp::new(&mut StdRng::seed_from_u64(9), &cfg);
        let x = Matrix::from_fn(3, 4, |i, j| (i + j) as f32 * 0.1);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn forward_batch_bit_identical_to_trace_at_any_thread_count() {
        let mut rng = StdRng::seed_from_u64(17);
        let mlp =
            Mlp::new(&mut rng, &MlpConfig { input_dim: 6, hidden: vec![9, 4], output_dim: 2 });
        let x = Matrix::from_fn(37, 6, |i, j| ((i * 7 + j * 3) % 13) as f32 * 0.17 - 1.0);
        let trace = mlp.forward_trace(&x);
        for threads in [1usize, 2, 3, 8] {
            let (emb, logits) = flexer_par::with_threads(threads, || mlp.forward_batch(&x));
            assert_eq!(&emb, trace.embedding(), "embedding, {threads} threads");
            assert_eq!(&logits, trace.output(), "logits, {threads} threads");
        }
    }
}
