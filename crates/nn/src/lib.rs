//! # flexer-nn
//!
//! From-scratch neural substrate for the FlexER reproduction: dense and
//! sparse matrices with cache-friendly kernels, linear layers with manual
//! backprop, activations, the losses of the paper (softmax cross entropy,
//! Eq. 1, and the weighted multi-label BCE of Eq. 2), and Adam/SGD
//! optimizers (Adam with L2 weight decay, as used for the GNN in §5.2.1).
//!
//! Everything is `f32` and deterministic under a seed — the substrate the
//! matcher (`flexer-matcher`) and the GNN (`flexer-graph`) are built on.
//! With the default `parallel` feature, large matmuls and batched forward
//! passes are row-blocked across the `flexer-par` thread budget
//! (`RAYON_NUM_THREADS`); every row runs the exact serial kernel, so
//! results stay bit-identical for any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod init;
pub mod kernels;
pub mod linear;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod sparse;

pub use kernels::{Epilogue, PackedB};
pub use linear::Linear;
pub use matrix::Matrix;
pub use mlp::{Mlp, MlpConfig};
pub use optim::{Adam, AdamConfig, Optimizer, Sgd};
pub use sparse::SparseMatrix;
