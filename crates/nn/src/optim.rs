//! Optimizers: Adam (with L2 weight decay, as the paper's GNN uses:
//! lr 0.01, weight decay 5e-4) and plain SGD.
//!
//! Parameters are addressed by *slot*: each training step, layers push their
//! `(value, grad)` buffers in a fixed order and the optimizer keeps one
//! moment state per slot, lazily sized on first use.

/// A slot-addressed optimizer.
pub trait Optimizer {
    /// Marks the beginning of a new optimization step (advances internal
    /// step counters).
    fn begin_step(&mut self);
    /// Applies the update of `slot` to `value` given `grad`.
    fn update(&mut self, slot: usize, value: &mut [f32], grad: &[f32]);
}

/// Adam configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// L2 weight decay added to the gradient (PyTorch `Adam(weight_decay=…)`
    /// semantics, which the paper uses — not AdamW).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

impl AdamConfig {
    /// The paper's GNN optimizer: Adam, lr 0.01, weight decay 5e-4 (§5.2.1).
    pub fn paper_gnn() -> Self {
        Self { lr: 0.01, weight_decay: 5e-4, ..Self::default() }
    }

    /// Sets the learning rate.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }
}

/// Adam optimizer state.
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    t: i32,
    moments: Vec<Option<(Vec<f32>, Vec<f32>)>>,
}

impl Adam {
    /// Creates an Adam optimizer.
    pub fn new(config: AdamConfig) -> Self {
        Self { config, t: 0, moments: Vec::new() }
    }

    /// Current step count.
    pub fn step_count(&self) -> i32 {
        self.t
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn update(&mut self, slot: usize, value: &mut [f32], grad: &[f32]) {
        assert_eq!(value.len(), grad.len(), "value/grad length mismatch");
        if slot >= self.moments.len() {
            self.moments.resize(slot + 1, None);
        }
        let (m, v) = self.moments[slot]
            .get_or_insert_with(|| (vec![0.0; value.len()], vec![0.0; value.len()]));
        assert_eq!(m.len(), value.len(), "slot {slot} reused with a different shape");
        let c = self.config;
        let bc1 = 1.0 - c.beta1.powi(self.t.max(1));
        let bc2 = 1.0 - c.beta2.powi(self.t.max(1));
        for i in 0..value.len() {
            let g = grad[i] + c.weight_decay * value[i];
            m[i] = c.beta1 * m[i] + (1.0 - c.beta1) * g;
            v[i] = c.beta2 * v[i] + (1.0 - c.beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            value[i] -= c.lr * m_hat / (v_hat.sqrt() + c.eps);
        }
    }
}

/// Plain SGD with optional L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Self { lr, weight_decay: 0.0 }
    }
}

impl Optimizer for Sgd {
    fn begin_step(&mut self) {}

    fn update(&mut self, _slot: usize, value: &mut [f32], grad: &[f32]) {
        assert_eq!(value.len(), grad.len(), "value/grad length mismatch");
        for (v, &g) in value.iter_mut().zip(grad) {
            *v -= self.lr * (g + self.weight_decay * *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x-3)^2; Adam should converge near 3.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut opt = Adam::new(AdamConfig { lr: 0.1, ..Default::default() });
        let mut x = vec![0.0f32];
        for _ in 0..500 {
            opt.begin_step();
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.update(0, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "x = {}", x[0]);
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut opt = Sgd::new(0.1);
        let mut x = vec![10.0f32];
        for _ in 0..200 {
            opt.begin_step();
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.update(0, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut opt = Sgd { lr: 0.1, weight_decay: 0.5 };
        let mut x = vec![1.0f32];
        opt.update(0, &mut x, &[0.0]);
        assert!(x[0] < 1.0);
    }

    #[test]
    fn adam_slots_are_independent() {
        let mut opt = Adam::new(AdamConfig::default());
        let mut a = vec![1.0f32];
        let mut b = vec![1.0f32, 2.0];
        opt.begin_step();
        opt.update(0, &mut a, &[1.0]);
        opt.update(1, &mut b, &[1.0, 1.0]);
        // reusing slot 0 with the same shape is fine
        opt.begin_step();
        opt.update(0, &mut a, &[1.0]);
        assert_eq!(opt.step_count(), 2);
    }

    #[test]
    #[should_panic(expected = "different shape")]
    fn adam_slot_shape_reuse_panics() {
        let mut opt = Adam::new(AdamConfig::default());
        let mut a = vec![1.0f32];
        opt.begin_step();
        opt.update(0, &mut a, &[1.0]);
        let mut b = vec![1.0f32, 2.0];
        opt.update(0, &mut b, &[1.0, 1.0]);
    }

    #[test]
    fn paper_gnn_config() {
        let c = AdamConfig::paper_gnn();
        assert_eq!(c.lr, 0.01);
        assert_eq!(c.weight_decay, 5e-4);
    }
}
