//! Property-based tests for the neural substrate: matrix algebra laws,
//! loss-function invariants and optimizer behaviour under random inputs.

use flexer_nn::activation::{relu_inplace, softmax_rows};
use flexer_nn::kernels::{bias_relu_inplace, matmul_packed_into, Epilogue, PackedB};
use flexer_nn::loss::{multilabel_bce_with_logits, softmax_cross_entropy};
use flexer_nn::{Adam, AdamConfig, Matrix, Optimizer, SparseMatrix};
use proptest::prelude::*;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·B)·C = A·(B·C) within float tolerance.
    #[test]
    fn matmul_associativity(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// A·(B+C) = A·B + A·C.
    #[test]
    fn matmul_distributivity(
        a in matrix_strategy(3, 3),
        b in matrix_strategy(3, 2),
        c in matrix_strategy(3, 2),
    ) {
        let mut sum = b.clone();
        sum.add_scaled(&c, 1.0);
        let left = a.matmul(&sum);
        let mut right = a.matmul(&b);
        right.add_scaled(&a.matmul(&c), 1.0);
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Transpose is an involution and (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_laws(a in matrix_strategy(4, 3), b in matrix_strategy(3, 2)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// The fused transpose kernels agree with explicit transposition.
    #[test]
    fn fused_transpose_kernels(a in matrix_strategy(3, 4), b in matrix_strategy(5, 4)) {
        let fused = a.matmul_transpose_b(&b);
        let explicit = a.matmul(&b.transpose());
        for (x, y) in fused.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        let c = Matrix::from_fn(3, 2, |i, j| (i + 2 * j) as f32 * 0.5 - 1.0);
        let fused = a.matmul_transpose_a(&c);
        let explicit = a.transpose().matmul(&c);
        for (x, y) in fused.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Softmax rows are probability distributions and order-preserving.
    #[test]
    fn softmax_is_a_distribution(logits in matrix_strategy(4, 5)) {
        let p = softmax_rows(&logits);
        for i in 0..p.rows() {
            let row_sum: f32 = p.row(i).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-4);
            for (j, &v) in p.row(i).iter().enumerate() {
                prop_assert!(v >= 0.0);
                for (k, &w) in p.row(i).iter().enumerate() {
                    if logits.get(i, j) > logits.get(i, k) {
                        prop_assert!(v >= w);
                    }
                }
            }
        }
    }

    /// CE loss is non-negative, finite, and its gradient rows sum to ~0
    /// (softmax minus one-hot integrates to zero).
    #[test]
    fn cross_entropy_invariants(
        logits in matrix_strategy(5, 2),
        targets in prop::collection::vec(0usize..2, 5),
    ) {
        let (loss, grad) = softmax_cross_entropy(&logits, &targets, None);
        prop_assert!(loss >= -1e-6);
        prop_assert!(loss.is_finite());
        prop_assert!(grad.all_finite());
        for i in 0..grad.rows() {
            let s: f32 = grad.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-4, "row {i} grad sum {s}");
        }
    }

    /// Multi-label BCE is non-negative and its gradient sign points from
    /// prediction toward target.
    #[test]
    fn bce_gradient_signs(
        logits in matrix_strategy(3, 4),
        bits in prop::collection::vec(any::<bool>(), 12),
    ) {
        let targets = Matrix::from_vec(
            3, 4,
            bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
        );
        let (loss, grad) = multilabel_bce_with_logits(&logits, &targets, &[1.0; 4]);
        prop_assert!(loss >= -1e-6);
        for i in 0..3 {
            for j in 0..4 {
                let g = grad.get(i, j);
                if targets.get(i, j) == 1.0 {
                    prop_assert!(g <= 1e-6, "positive target must push logit up");
                } else {
                    prop_assert!(g >= -1e-6, "negative target must push logit down");
                }
            }
        }
    }

    /// A single Adam step against a pure-quadratic gradient decreases the
    /// distance to the optimum for small steps.
    #[test]
    fn adam_step_moves_toward_optimum(start in -5.0f32..5.0, target in -5.0f32..5.0) {
        prop_assume!((start - target).abs() > 0.2);
        let mut opt = Adam::new(AdamConfig { lr: 0.05, ..Default::default() });
        let mut x = vec![start];
        for _ in 0..50 {
            opt.begin_step();
            let g = vec![2.0 * (x[0] - target)];
            opt.update(0, &mut x, &g);
        }
        prop_assert!((x[0] - target).abs() < (start - target).abs());
    }

    /// The packed 4×4-blocked matmul is bit-identical to the naive
    /// triple loop for random ragged shapes (including dims far from
    /// multiples of 4) and for every epilogue — zeros are injected so
    /// the naive kernel's `a[i][k] == 0.0` skip is exercised.
    #[test]
    fn packed_matmul_bit_identical_on_random_ragged_shapes(
        m in 1usize..11,
        k in 1usize..19,
        n in 1usize..15,
        raw in prop::collection::vec(-2.0f32..2.0, 11 * 19 + 19 * 15 + 15),
    ) {
        let zeroed = |v: f32| if v.abs() < 0.4 { 0.0 } else { v };
        let a = Matrix::from_vec(m, k, raw[..m * k].iter().map(|&v| zeroed(v)).collect());
        let b = Matrix::from_vec(k, n, raw[m * k..m * k + k * n].to_vec());
        let bias: Vec<f32> = raw[m * k + k * n..m * k + k * n + n].to_vec();
        let pack = PackedB::pack(&b);
        for which in 0..3 {
            let epilogue = match which {
                0 => Epilogue::None,
                1 => Epilogue::Bias(&bias),
                _ => Epilogue::BiasRelu(&bias),
            };
            let mut got = Matrix::zeros(0, 0);
            matmul_packed_into(&a, &pack, epilogue, &mut got);
            // Reference: naive matmul + separate (unfused) passes.
            let mut want = Matrix::zeros(0, 0);
            a.matmul_into(&b, &mut want);
            if which >= 1 {
                want.add_row_broadcast(&bias);
            }
            if which == 2 {
                relu_inplace(&mut want);
            }
            for (g, w) in got.data().iter().zip(want.data()) {
                prop_assert_eq!(g.to_bits(), w.to_bits(),
                    "{}x{}x{} epilogue {}: {} vs {}", m, k, n, which, g, w);
            }
        }
    }

    /// The fused bias+ReLU sweep equals the two separate passes, bit for
    /// bit, on random matrices.
    #[test]
    fn fused_bias_relu_matches_unfused(
        rows in 1usize..9,
        cols in 1usize..13,
        raw in prop::collection::vec(-3.0f32..3.0, 9 * 13 + 13),
    ) {
        let mut fused = Matrix::from_vec(rows, cols, raw[..rows * cols].to_vec());
        let bias: Vec<f32> = raw[rows * cols..rows * cols + cols].to_vec();
        let mut separate = fused.clone();
        bias_relu_inplace(&mut fused, &bias, true);
        separate.add_row_broadcast(&bias);
        relu_inplace(&mut separate);
        for (g, w) in fused.data().iter().zip(separate.data()) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    /// Sparse × dense always equals densified × dense.
    #[test]
    fn sparse_matmul_agrees_with_dense(
        entries in prop::collection::vec((0u32..6, -2.0f32..2.0), 0..12),
        dense in matrix_strategy(6, 3),
    ) {
        let sparse = SparseMatrix::from_rows(6, &[entries.clone(), entries]);
        let a = sparse.matmul_dense(&dense);
        let b = sparse.to_dense().matmul(&dense);
        for (x, y) in a.data().iter().zip(b.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}
