//! Property tests for the streaming histogram: quantile estimates stay
//! within the documented relative-error bound of an exact sorted-sample
//! oracle, merging two histograms is bit-identical to ingesting the union
//! stream, and chunked parallel aggregation via `flexer-par` is
//! bit-identical for any thread count.

#![cfg(feature = "enabled")]

use flexer_obs::{Histogram, Recorder, REL_ERROR_BOUND};
use proptest::prelude::*;

/// Exact nearest-rank quantile over a sample set.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Samples spanning the exact low range through multi-octave magnitudes.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        (0u32..30, 0u64..1024).prop_map(|(shift, off)| (1u64 << shift) + off),
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every decile (plus p99) of the histogram estimate is within
    /// `REL_ERROR_BOUND` of the exact nearest-rank oracle on the same
    /// samples, and exact below 2·SUB.
    #[test]
    fn quantiles_match_sorted_oracle_within_bound(values in samples()) {
        let mut hist = Histogram::new();
        let mut sorted = values.clone();
        for &v in &values {
            hist.record(v);
        }
        sorted.sort_unstable();
        for i in 0..=10u32 {
            let q = f64::from(i) / 10.0;
            let exact = oracle_quantile(&sorted, q);
            let est = hist.quantile(q);
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(
                err <= REL_ERROR_BOUND,
                "q={} exact={} est={} err={}", q, exact, est, err
            );
            if exact < 2 * flexer_obs::SUB {
                prop_assert_eq!(est, exact, "low range must be exact at q={}", q);
            }
        }
        prop_assert_eq!(hist.count(), values.len() as u64);
        prop_assert_eq!(hist.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(hist.min(), *sorted.first().unwrap());
        prop_assert_eq!(hist.max(), *sorted.last().unwrap());
    }

    /// merge(a, b) is bit-identical (structural equality over the full
    /// bucket array) to recording the concatenated stream, in either order.
    #[test]
    fn merge_is_bit_identical_to_union_stream(
        left in samples(),
        right in samples(),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut union = Histogram::new();
        for &v in &left {
            a.record(v);
            union.record(v);
        }
        for &v in &right {
            b.record(v);
            union.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &union);
        prop_assert_eq!(&ba, &union);
        prop_assert_eq!(ab.quantile(0.99), union.quantile(0.99));
    }

    /// Chunked aggregation through flexer-par: split the stream into
    /// contiguous per-chunk histograms built on worker threads, merge in
    /// chunk order — bit-identical to the serial histogram for any thread
    /// count.
    #[test]
    fn parallel_aggregation_is_bit_identical_for_any_thread_count(
        values in samples(),
        threads in 1usize..5,
    ) {
        let mut serial = Histogram::new();
        for &v in &values {
            serial.record(v);
        }
        let chunks: Vec<&[u64]> = values.chunks(32.max(values.len() / 7)).collect();
        let merged = flexer_par::with_threads(threads, || {
            let partials = flexer_par::parallel_map(chunks.len(), |i| {
                let mut h = Histogram::new();
                for &v in chunks[i] {
                    h.record(v);
                }
                h
            });
            let mut acc = Histogram::new();
            for part in &partials {
                acc.merge(part);
            }
            acc
        });
        prop_assert_eq!(&merged, &serial);

        // Same property one level up: per-chunk Recorders folded with
        // merge_from agree with a single recorder fed the whole stream.
        let whole = Recorder::new();
        for &v in &values {
            whole.record_span_ns("stream", v);
        }
        let folded = Recorder::new();
        for chunk in &chunks {
            let part = Recorder::new();
            for &v in *chunk {
                part.record_span_ns("stream", v);
            }
            folded.merge_from(&part);
        }
        prop_assert_eq!(
            folded.span_histogram("stream").unwrap(),
            whole.span_histogram("stream").unwrap()
        );
    }
}
