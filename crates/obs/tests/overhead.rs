//! Disabled-path and steady-state overhead guarantees, asserted with a
//! counting global allocator in the style of `flexer-serve`'s
//! `alloc_bound.rs` (test binary only; the library stays
//! `forbid(unsafe_code)`).
//!
//! Everything lives in ONE `#[test]`: the allocation counter is global to
//! the process, so concurrently-running sibling tests (or the libtest
//! harness printing their results) would race spurious allocations into a
//! measured window. A single test serializes the binary by construction.

use flexer_obs::Recorder;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn recording_paths_respect_allocation_bounds() {
    // A runtime-disabled recorder's span guard must not allocate at all —
    // it is the hot-path cost a production binary pays with metrics off.
    let rec = Recorder::disabled();
    let counter = rec.counter("noop");
    let n = allocs_during(|| {
        for _ in 0..10_000 {
            let _span = rec.span("resolve.block");
            counter.inc();
        }
    });
    assert_eq!(n, 0, "disabled span path allocated {n} times over 10k iterations");

    // After the first occurrence of each span path (which allocates the
    // owned histogram key), the enabled recording path reuses thread-local
    // scratch and is allocation-free.
    #[cfg(feature = "enabled")]
    {
        let rec = Recorder::new();
        let counter = rec.counter("serve.forward.rows");
        // Warm: first occurrence allocates the path key + histogram
        // buckets, and the thread-local stack/scratch grow to size.
        for _ in 0..3 {
            let _outer = rec.span("resolve");
            let _inner = rec.span("forward");
            rec.record_span_ns_indexed("shard.ingest.local", 7, 100);
            counter.add(64);
        }
        let n = allocs_during(|| {
            for _ in 0..10_000 {
                let _outer = rec.span("resolve");
                let _inner = rec.span("forward");
                rec.record_span_ns_indexed("shard.ingest.local", 7, 100);
                counter.add(64);
            }
        });
        assert_eq!(n, 0, "steady-state span recording allocated {n} times over 10k iterations");
    }

    // With the `enabled` feature compiled out, even a runtime-enabled
    // recorder records nothing and never touches the allocator.
    #[cfg(not(feature = "enabled"))]
    {
        let rec = Recorder::new();
        let n = allocs_during(|| {
            for _ in 0..10_000 {
                let _span = rec.span("resolve.block");
            }
        });
        assert_eq!(n, 0);
        assert!(rec.snapshot().spans.is_empty());
    }
}
