//! Log-bucketed streaming histogram of `u64` values.
//!
//! HDR-style log2-linear bucketing with [`SUB`] linear sub-buckets per
//! octave, done entirely in integer arithmetic so that bucket assignment
//! is deterministic across platforms. Values below `2 * SUB` are recorded
//! exactly; above that the relative quantile error is bounded by
//! `1 / (2 * SUB)` ≈ 1.6%. Memory is fixed ([`N_BUCKETS`] `u64` slots,
//! ~15 KiB) regardless of how many samples are recorded, and two
//! histograms merge by element-wise addition — `merge(a, b)` is
//! bit-identical to ingesting the concatenated sample stream, which makes
//! per-thread and per-shard aggregation exact.

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per octave; the quantile error bound is `1/(2*SUB)`.
pub const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: 64 exact buckets + 58 octaves × 32 sub-buckets.
pub const N_BUCKETS: usize = (2 * SUB as usize) + 58 * SUB as usize;

/// Upper bound on the relative error of [`Histogram::quantile`] versus an
/// exact nearest-rank oracle over the same samples.
pub const REL_ERROR_BOUND: f64 = 1.0 / (2.0 * SUB as f64);

/// Bucket index for a value. Zero values are clamped to 1 (the histogram
/// stores strictly positive samples; callers clamp, as the serve metrics
/// layer does for nanosecond latencies).
#[inline]
fn bucket_index(v: u64) -> usize {
    let v = v.max(1);
    if v < 2 * SUB {
        v as usize
    } else {
        let top = 63 - v.leading_zeros();
        let octave = top - SUB_BITS;
        let sub = (v >> octave) - SUB;
        (2 * SUB + (octave as u64 - 1) * SUB + sub) as usize
    }
}

/// Representative value for a bucket: the exact value for the low exact
/// range, the bucket midpoint above it.
#[inline]
fn bucket_rep(idx: usize) -> u64 {
    if idx < 2 * SUB as usize {
        idx as u64
    } else {
        let rel = idx as u64 - 2 * SUB;
        let octave = (rel / SUB + 1) as u32;
        let sub = rel % SUB;
        let low = (SUB + sub) << octave;
        low + (1u64 << octave) / 2
    }
}

/// Fixed-memory mergeable histogram of positive `u64` samples.
///
/// Equality is structural over the full bucket array, so
/// `merge(a, b) == ingest(a ∪ b)` can be asserted bit-exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram with all buckets allocated.
    pub fn new() -> Self {
        Histogram { counts: vec![0; N_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one sample (clamped to ≥ 1).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of the same sample value.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let v = v.max(1);
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one. Element-wise bucket addition:
    /// the result is bit-identical to having recorded both sample streams
    /// into a single histogram, in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (post-clamp, saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate: the representative value of the
    /// bucket holding the sample of rank `ceil(q * count)`. Returns 0 on an
    /// empty histogram. The estimate is exact for values below `2 * SUB`
    /// and within [`REL_ERROR_BOUND`] relative error otherwise.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The true sample lies inside this bucket, and so do the
                // recorded min/max whenever this is the first/last occupied
                // bucket — clamping only moves the estimate closer to it.
                return bucket_rep(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 1..2 * SUB {
            h.record(v);
        }
        for v in 1..2 * SUB {
            let q = (v as f64) / (2 * SUB - 1) as f64;
            assert_eq!(h.quantile(q), v, "q={q}");
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut values: Vec<u64> = (1..4096).collect();
        for shift in 12..64u32 {
            for off in [0u64, 1, 1 << (shift - 3)] {
                values.push((1u64 << shift).saturating_add(off));
            }
        }
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx < N_BUCKETS, "v={v} idx={idx}");
            assert!(idx >= prev, "non-monotone at v={v}: {idx} < {prev}");
            prev = idx;
        }
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn representative_lies_in_its_bucket() {
        for idx in 1..N_BUCKETS {
            let rep = bucket_rep(idx);
            assert_eq!(bucket_index(rep), idx, "idx={idx} rep={rep}");
        }
    }

    #[test]
    fn zero_is_clamped_to_one() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.min(), 1);
        assert_eq!(h.sum(), 1);
    }

    #[test]
    fn empty_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..1000u64 {
            let v = i * i * 7 + 1;
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
    }

    #[test]
    fn large_value_quantile_within_bound() {
        let mut h = Histogram::new();
        let v = 123_456_789u64;
        h.record_n(v, 10);
        let est = h.quantile(0.5);
        let err = (est as f64 - v as f64).abs() / v as f64;
        assert!(err <= REL_ERROR_BOUND, "err={err}");
    }
}
