//! Span and metrics recorder.
//!
//! A [`Recorder`] aggregates nanosecond span timings by hierarchical path
//! (`resolve.block`, `shard.ingest.local.3`, …) into mergeable
//! [`Histogram`]s, alongside monotonic counters, gauges, and value
//! histograms. Span nesting is tracked per thread: a guard opened while
//! another guard is live records under the joined dotted path. Worker
//! threads spawned by `flexer-par` do **not** inherit the caller's span
//! stack — instrumentation inside parallel closures should record explicit
//! dotted paths ([`Recorder::record_span_ns`] /
//! [`Recorder::record_span_ns_indexed`]) instead of relying on nesting.
//!
//! Steady-state recording is allocation-free: path composition reuses a
//! thread-local scratch string and histogram lookup borrows it as `&str`;
//! the owned key is allocated only the first time a path is seen. With the
//! crate's `enabled` feature off (or after [`Recorder::set_enabled`]
//! `(false)`), [`Recorder::span`] returns an inert guard without reading
//! the clock, taking a lock, or allocating.

use crate::export::{HistStat, MetricsSnapshot};
use crate::hist::Histogram;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Per-thread span stack plus a reusable path-composition buffer.
struct ThreadFrames {
    stack: Vec<&'static str>,
    scratch: String,
}

thread_local! {
    static FRAMES: RefCell<ThreadFrames> =
        const { RefCell::new(ThreadFrames { stack: Vec::new(), scratch: String::new() }) };
}

#[derive(Default)]
struct Shared {
    /// Runtime kill switch; the compile-time `enabled` feature is checked
    /// first so disabled builds never reach this load.
    enabled: AtomicBool,
    spans: Mutex<BTreeMap<Box<str>, Histogram>>,
    values: Mutex<BTreeMap<Box<str>, Histogram>>,
    counters: Mutex<BTreeMap<Box<str>, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<Box<str>, f64>>,
}

/// Shared-handle span/metrics aggregator. Cloning is cheap (`Arc`); all
/// clones record into the same aggregate.
#[derive(Clone, Default)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("enabled", &self.is_enabled()).finish_non_exhaustive()
    }
}

/// Monotonic counter handle, pre-registered so hot paths pay one relaxed
/// atomic add per increment with no map lookup.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

impl Counter {
    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if cfg!(feature = "enabled") {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// RAII guard returned by [`Recorder::span`]; records the elapsed
/// nanoseconds under the composed span path on drop.
pub struct SpanGuard<'a> {
    live: Option<(&'a Recorder, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((rec, start)) = self.live.take() {
            let ns = start.elapsed().as_nanos() as u64;
            FRAMES.with(|f| {
                let mut f = f.borrow_mut();
                let f = &mut *f;
                f.scratch.clear();
                for (i, part) in f.stack.iter().enumerate() {
                    if i > 0 {
                        f.scratch.push('.');
                    }
                    f.scratch.push_str(part);
                }
                rec.record_span_ns(&f.scratch, ns);
                f.stack.pop();
            });
        }
    }
}

impl Recorder {
    /// New recorder, runtime-enabled (recording still compiles out when the
    /// crate's `enabled` feature is off).
    pub fn new() -> Self {
        let rec = Recorder { shared: Arc::new(Shared::default()) };
        rec.shared.enabled.store(true, Ordering::Relaxed);
        rec
    }

    /// New recorder with the runtime switch off: spans are inert until
    /// [`Recorder::set_enabled`]`(true)`.
    pub fn disabled() -> Self {
        Recorder { shared: Arc::new(Shared::default()) }
    }

    /// Flip the runtime recording switch.
    pub fn set_enabled(&self, on: bool) {
        self.shared.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is active (compile-time feature and runtime flag).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        cfg!(feature = "enabled") && self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Open a timed span named `name`, nested under any span already open
    /// on this thread. The returned guard records on drop; bind it
    /// (`let _span = …`) so it lives to the end of the scope.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard { live: None };
        }
        FRAMES.with(|f| f.borrow_mut().stack.push(name));
        SpanGuard { live: Some((self, Instant::now())) }
    }

    /// Record `ns` under an explicit dotted span path, bypassing the
    /// thread-local nesting stack (use inside `flexer-par` workers).
    pub fn record_span_ns(&self, path: &str, ns: u64) {
        if !self.is_enabled() {
            return;
        }
        record_into(&self.shared.spans, path, ns);
    }

    /// Record `ns` under `base.idx` (e.g. per-shard paths) without
    /// allocating the composed path on the steady state.
    pub fn record_span_ns_indexed(&self, base: &str, idx: usize, ns: u64) {
        if !self.is_enabled() {
            return;
        }
        FRAMES.with(|f| {
            let mut f = f.borrow_mut();
            let f = &mut *f;
            f.scratch.clear();
            f.scratch.push_str(base);
            f.scratch.push('.');
            push_usize(&mut f.scratch, idx);
            record_into(&self.shared.spans, &f.scratch, ns);
        });
    }

    /// Record a non-timing sample (batch size, byte count, …) into the
    /// value histogram named `name`.
    pub fn record_value(&self, name: &str, v: u64) {
        if !self.is_enabled() {
            return;
        }
        record_into(&self.shared.values, name, v);
    }

    /// Pre-register (or look up) a counter handle by name.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.shared.counters.lock().unwrap();
        if let Some(cell) = counters.get(name) {
            return Counter { cell: Arc::clone(cell) };
        }
        let cell = Arc::new(AtomicU64::new(0));
        counters.insert(name.into(), Arc::clone(&cell));
        Counter { cell }
    }

    /// One-shot counter increment by name (registers on first use).
    pub fn add(&self, name: &str, n: u64) {
        if !self.is_enabled() {
            return;
        }
        self.counter(name).add(n);
    }

    /// Set a gauge to an instantaneous value.
    pub fn set_gauge(&self, name: &str, v: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut gauges = self.shared.gauges.lock().unwrap();
        if let Some(slot) = gauges.get_mut(name) {
            *slot = v;
        } else {
            gauges.insert(name.into(), v);
        }
    }

    /// Clone of the span histogram at `path`, if any samples were recorded.
    pub fn span_histogram(&self, path: &str) -> Option<Histogram> {
        self.shared.spans.lock().unwrap().get(path).cloned()
    }

    /// Clone of the value histogram named `name`, if present.
    pub fn value_histogram(&self, name: &str) -> Option<Histogram> {
        self.shared.values.lock().unwrap().get(name).cloned()
    }

    /// Fold another recorder's aggregates into this one: histograms merge
    /// bucket-wise (exact), counters add, gauges take the other's value.
    pub fn merge_from(&self, other: &Recorder) {
        if Arc::ptr_eq(&self.shared, &other.shared) {
            return;
        }
        for (map, other_map) in
            [(&self.shared.spans, &other.shared.spans), (&self.shared.values, &other.shared.values)]
        {
            let mut dst = map.lock().unwrap();
            for (path, hist) in other_map.lock().unwrap().iter() {
                if let Some(existing) = dst.get_mut(path.as_ref()) {
                    existing.merge(hist);
                } else {
                    dst.insert(path.clone(), hist.clone());
                }
            }
        }
        {
            let mut dst = self.shared.counters.lock().unwrap();
            for (name, cell) in other.shared.counters.lock().unwrap().iter() {
                let n = cell.load(Ordering::Relaxed);
                if let Some(existing) = dst.get(name.as_ref()) {
                    existing.fetch_add(n, Ordering::Relaxed);
                } else {
                    dst.insert(name.clone(), Arc::new(AtomicU64::new(n)));
                }
            }
        }
        let mut gauges = self.shared.gauges.lock().unwrap();
        for (name, v) in other.shared.gauges.lock().unwrap().iter() {
            gauges.insert(name.clone(), *v);
        }
    }

    /// Drop all span/value histograms and gauges and zero every counter
    /// (existing [`Counter`] handles stay registered and valid).
    pub fn reset(&self) {
        self.shared.spans.lock().unwrap().clear();
        self.shared.values.lock().unwrap().clear();
        self.shared.gauges.lock().unwrap().clear();
        for cell in self.shared.counters.lock().unwrap().values() {
            cell.store(0, Ordering::Relaxed);
        }
    }

    /// Point-in-time snapshot of every span, value, counter, and gauge, in
    /// deterministic (sorted-by-name) order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let stats = |map: &Mutex<BTreeMap<Box<str>, Histogram>>| {
            map.lock()
                .unwrap()
                .iter()
                .filter(|(_, h)| !h.is_empty())
                .map(|(name, h)| HistStat::from_histogram(name, h))
                .collect::<Vec<_>>()
        };
        MetricsSnapshot {
            spans: stats(&self.shared.spans),
            values: stats(&self.shared.values),
            counters: self
                .shared
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(name, cell)| (name.to_string(), cell.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .shared
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(name, v)| (name.to_string(), *v))
                .collect(),
        }
    }
}

/// Record into a named histogram, allocating the owned key only on the
/// first occurrence of the name.
fn record_into(map: &Mutex<BTreeMap<Box<str>, Histogram>>, name: &str, v: u64) {
    let mut map = map.lock().unwrap();
    if let Some(h) = map.get_mut(name) {
        h.record(v);
    } else {
        let mut h = Histogram::new();
        h.record(v);
        map.insert(name.into(), h);
    }
}

/// Append a decimal integer without going through `format!` (and without
/// allocating — per-shard paths are composed on the ingest hot path).
fn push_usize(buf: &mut String, mut v: usize) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    for &d in &digits[i..] {
        buf.push(d as char);
    }
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// Process-global recorder. Low-level crates (blocking, store) record here;
/// services clone this handle by default so their aggregates include the
/// layers below them.
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::new)
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_compose_dotted_paths() {
        let rec = Recorder::new();
        {
            let _outer = rec.span("resolve");
            {
                let _inner = rec.span("block");
                std::thread::yield_now();
            }
            {
                let _inner = rec.span("forward");
            }
        }
        let snap = rec.snapshot();
        assert!(snap.span("resolve").is_some());
        assert!(snap.span("resolve.block").is_some());
        assert!(snap.span("resolve.forward").is_some());
        assert_eq!(snap.span("resolve").unwrap().count, 1);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        {
            let _s = rec.span("resolve");
        }
        rec.add("hits", 3);
        rec.set_gauge("g", 1.0);
        rec.record_value("v", 9);
        let snap = rec.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.values.is_empty());
        rec.set_enabled(true);
        {
            let _s = rec.span("resolve");
        }
        assert_eq!(rec.snapshot().span("resolve").unwrap().count, 1);
    }

    #[test]
    fn indexed_span_paths() {
        let rec = Recorder::new();
        rec.record_span_ns_indexed("shard.ingest.local", 12, 500);
        rec.record_span_ns_indexed("shard.ingest.local", 3, 700);
        let snap = rec.snapshot();
        assert_eq!(snap.span("shard.ingest.local.12").unwrap().sum, 500);
        assert_eq!(snap.span("shard.ingest.local.3").unwrap().sum, 700);
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let rec = Recorder::new();
        let c = rec.counter("serve.cache.hits");
        c.add(5);
        c.inc();
        rec.add("serve.cache.hits", 4);
        rec.set_gauge("arena.rows", 42.5);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("serve.cache.hits"), Some(10));
        assert_eq!(snap.gauge("arena.rows"), Some(42.5));
    }

    #[test]
    fn merge_from_adds_counters_and_merges_histograms() {
        let a = Recorder::new();
        let b = Recorder::new();
        a.record_span_ns("x", 10);
        b.record_span_ns("x", 20);
        b.record_span_ns("y", 5);
        a.add("c", 1);
        b.add("c", 2);
        a.merge_from(&b);
        let snap = a.snapshot();
        assert_eq!(snap.span("x").unwrap().count, 2);
        assert_eq!(snap.span("x").unwrap().sum, 30);
        assert_eq!(snap.span("y").unwrap().count, 1);
        assert_eq!(snap.counter("c"), Some(3));
    }

    #[test]
    fn reset_clears_but_keeps_counter_handles() {
        let rec = Recorder::new();
        let c = rec.counter("n");
        c.add(7);
        rec.record_span_ns("x", 10);
        rec.reset();
        assert_eq!(c.get(), 0);
        c.add(2);
        let snap = rec.snapshot();
        assert!(snap.span("x").is_none());
        assert_eq!(snap.counter("n"), Some(2));
    }
}
