//! Snapshot types and JSON / Prometheus-style text exposition.
//!
//! `flexer-obs` sits below `flexer-bench` in the crate graph, so it carries
//! its own minimal JSON emitter instead of reusing the bench crate's
//! builder. Output key order is deterministic (sorted by name) so snapshot
//! diffs are stable across runs.

use crate::hist::Histogram;

/// Summary statistics of one named histogram (span timings in nanoseconds,
/// or a value distribution).
#[derive(Clone, Debug, PartialEq)]
pub struct HistStat {
    /// Dotted span path or value name.
    pub name: String,
    /// Recorded sample count.
    pub count: u64,
    /// Sum of samples (ns for spans).
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median estimate (≤ ~1.6% relative error).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistStat {
    /// Summarise `hist` under `name`.
    pub fn from_histogram(name: &str, hist: &Histogram) -> Self {
        HistStat {
            name: name.to_string(),
            count: hist.count(),
            sum: hist.sum(),
            min: hist.min(),
            max: hist.max(),
            mean: hist.mean(),
            p50: hist.quantile(0.50),
            p90: hist.quantile(0.90),
            p99: hist.quantile(0.99),
        }
    }
}

/// Point-in-time export of a [`crate::Recorder`]'s aggregates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Span timing histograms, keyed by dotted path, sorted by path.
    pub spans: Vec<HistStat>,
    /// Non-timing value histograms, sorted by name.
    pub values: Vec<HistStat>,
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Instantaneous gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
}

impl MetricsSnapshot {
    /// Span statistics by exact dotted path.
    pub fn span(&self, path: &str) -> Option<&HistStat> {
        self.spans.iter().find(|s| s.name == path)
    }

    /// Value-histogram statistics by name.
    pub fn value(&self, name: &str) -> Option<&HistStat> {
        self.values.iter().find(|s| s.name == name)
    }

    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Sum of `sum` over every span whose path starts with `prefix`
    /// followed by a `.` (or equals `prefix`). Used by the bench bins to
    /// roll a stage family (e.g. every `resolve.*` stage) into one number.
    pub fn span_sum_ns(&self, prefix: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| {
                s.name == prefix
                    || (s.name.len() > prefix.len()
                        && s.name.starts_with(prefix)
                        && s.name.as_bytes()[prefix.len()] == b'.')
            })
            .map(|s| s.sum)
            .sum()
    }

    /// JSON object with `spans` / `values` / `counters` / `gauges` keys.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"spans\":");
        push_hist_array(&mut out, &self.spans);
        out.push_str(",\"values\":");
        push_hist_array(&mut out, &self.values);
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            push_json_f64(&mut out, *v);
        }
        out.push_str("}}");
        out
    }

    /// Prometheus-style text exposition: one `flexer_span_ns` sample per
    /// (path, quantile), plus `_sum`/`_count` series, counters, gauges, and
    /// value histograms.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (family, stats) in [("flexer_span_ns", &self.spans), ("flexer_value", &self.values)] {
            for s in stats {
                for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                    out.push_str(family);
                    out.push_str("{path=\"");
                    out.push_str(&s.name);
                    out.push_str("\",quantile=\"");
                    out.push_str(q);
                    out.push_str("\"} ");
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
                for (suffix, v) in [("_sum", s.sum), ("_count", s.count)] {
                    out.push_str(family);
                    out.push_str(suffix);
                    out.push_str("{path=\"");
                    out.push_str(&s.name);
                    out.push_str("\"} ");
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
            }
        }
        for (name, v) in &self.counters {
            out.push_str("flexer_counter{name=\"");
            out.push_str(name);
            out.push_str("\"} ");
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for (name, v) in &self.gauges {
            out.push_str("flexer_gauge{name=\"");
            out.push_str(name);
            out.push_str("\"} ");
            push_json_f64(&mut out, *v);
            out.push('\n');
        }
        out
    }
}

fn push_hist_array(out: &mut String, stats: &[HistStat]) {
    out.push('[');
    for (i, s) in stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_string(out, &s.name);
        for (key, v) in [
            ("count", s.count),
            ("sum", s.sum),
            ("min", s.min),
            ("max", s.max),
            ("p50", s.p50),
            ("p90", s.p90),
            ("p99", s.p99),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push_str(",\"mean\":");
        push_json_f64(out, s.mean);
        out.push('}');
    }
    out.push(']');
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers, keep them as-is.
        out.push_str(&s);
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample_snapshot() -> MetricsSnapshot {
        let rec = Recorder::new();
        rec.record_span_ns("resolve.block", 100);
        rec.record_span_ns("resolve.block", 300);
        rec.record_span_ns("resolve.forward", 50);
        rec.record_value("ingest.batch_rows", 16);
        rec.add("cache.hits", 3);
        rec.set_gauge("arena.rows", 12.0);
        rec.snapshot()
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn json_contains_every_section() {
        let json = sample_snapshot().to_json();
        for needle in [
            "\"spans\":[",
            "\"name\":\"resolve.block\"",
            "\"count\":2",
            "\"sum\":400",
            "\"cache.hits\":3",
            "\"arena.rows\":12",
            "\"ingest.batch_rows\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn prometheus_exposition_shape() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("flexer_span_ns{path=\"resolve.block\",quantile=\"0.5\"} "));
        assert!(text.contains("flexer_span_ns_sum{path=\"resolve.block\"} 400"));
        assert!(text.contains("flexer_span_ns_count{path=\"resolve.forward\"} 1"));
        assert!(text.contains("flexer_counter{name=\"cache.hits\"} 3"));
        assert!(text.contains("flexer_gauge{name=\"arena.rows\"} 12"));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn span_sum_rolls_up_prefix_families() {
        let snap = sample_snapshot();
        assert_eq!(snap.span_sum_ns("resolve"), 450);
        assert_eq!(snap.span_sum_ns("resolve.block"), 400);
        // `resolve` must not match a hypothetical `resolvex` sibling.
        let rec = Recorder::new();
        rec.record_span_ns("resolvex", 1000);
        rec.record_span_ns("resolve.a", 1);
        assert_eq!(rec.snapshot().span_sum_ns("resolve"), 1);
    }

    #[test]
    fn json_string_escaping() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
