//! # flexer-obs — pipeline observability
//!
//! Zero-dependency tracing spans, counters/gauges, and mergeable streaming
//! histograms for the FlexER pipeline (the build environment is offline,
//! so this is hand-rolled in the same spirit as `flexer-par`).
//!
//! Three pieces:
//!
//! * [`Histogram`] — log-bucketed (HDR-style log2-linear) streaming
//!   histogram of `u64` samples: fixed ~15 KiB memory, ≤ ~1.6% relative
//!   quantile error, and *exact* mergeability — `merge(a, b)` is
//!   bit-identical to ingesting the union stream, so per-thread and
//!   per-shard aggregates combine losslessly.
//! * [`Recorder`] — aggregates nanosecond span timings by hierarchical
//!   dotted path (thread-local span stacks compose `resolve.block` from
//!   nested guards), plus named counters, gauges, and value histograms.
//!   Cheap to clone; every clone feeds the same aggregate. A process-wide
//!   instance is available via [`global`] for low-level crates.
//! * [`MetricsSnapshot`] — deterministic point-in-time export with
//!   [`MetricsSnapshot::to_json`] and a Prometheus-style
//!   [`MetricsSnapshot::to_prometheus`] text exposition; consumed by the
//!   bench bins to break `BENCH_*.json` down per stage.
//!
//! ## Usage
//!
//! ```
//! use flexer_obs::{span, Recorder};
//!
//! let rec = Recorder::new();
//! {
//!     let _resolve = rec.span("resolve");
//!     let _block = rec.span("block"); // records as "resolve.block"
//! }
//! let hits = rec.counter("cache.hits");
//! hits.inc();
//! {
//!     let _global = span!("store.save"); // records into flexer_obs::global()
//! }
//! let snapshot = rec.snapshot();
//! if let Some(stat) = snapshot.span("resolve.block") {
//!     assert_eq!(stat.count, 1); // absent only in `--no-default-features` builds
//! }
//! println!("{}", snapshot.to_json());
//! ```
//!
//! ## Disabling
//!
//! Build with `--no-default-features` to compile every recording call to a
//! no-op (no clock reads, locks, or allocations — asserted by
//! `tests/overhead.rs`), or flip a single recorder off at runtime with
//! [`Recorder::set_enabled`]. Span guards on the disabled path cost a few
//! nanoseconds (one relaxed atomic load).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod hist;
mod recorder;

pub use export::{HistStat, MetricsSnapshot};
pub use hist::{Histogram, N_BUCKETS, REL_ERROR_BOUND, SUB};
pub use recorder::{global, Counter, Recorder, SpanGuard};

/// Open a timed span on the process-global recorder (one argument) or an
/// explicit recorder (two arguments). Bind the result so the guard lives to
/// the end of the scope: `let _span = span!("store.save");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name)
    };
    ($rec:expr, $name:expr) => {
        $rec.span($name)
    };
}
