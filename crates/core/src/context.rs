//! The shared pipeline context: one benchmark, one featurized corpus.
//!
//! Featurization (the serialized-pair analogue of tokenizing for a
//! transformer) is intent-independent, so every model — Naïve,
//! In-parallel, Multi-label and FlexER — shares a single [`PairCorpus`],
//! exactly as the paper reuses one `C_train` with different labels.

use crate::error::CoreError;
use flexer_matcher::train::PairCorpus;
use flexer_matcher::MatcherConfig;
use flexer_types::{MierBenchmark, Split};

/// A validated benchmark plus its featurized pair corpus.
#[derive(Debug, Clone)]
pub struct PipelineContext {
    /// The benchmark.
    pub benchmark: MierBenchmark,
    /// Featurized candidate pairs (shared across all models).
    pub corpus: PairCorpus,
}

impl PipelineContext {
    /// Validates the benchmark and featurizes its candidate set.
    pub fn new(benchmark: MierBenchmark, config: &MatcherConfig) -> Result<Self, CoreError> {
        benchmark.validate()?;
        if benchmark.candidates.is_empty() {
            return Err(CoreError::EmptyCandidateSet);
        }
        let corpus = PairCorpus::from_benchmark(&benchmark, config);
        Ok(Self { benchmark, corpus })
    }

    /// Train pair indices.
    pub fn train_idx(&self) -> Vec<usize> {
        self.benchmark.split_indices(Split::Train)
    }

    /// Validation pair indices.
    pub fn valid_idx(&self) -> Vec<usize> {
        self.benchmark.split_indices(Split::Valid)
    }

    /// Test pair indices.
    pub fn test_idx(&self) -> Vec<usize> {
        self.benchmark.split_indices(Split::Test)
    }

    /// Number of intents.
    pub fn n_intents(&self) -> usize {
        self.benchmark.n_intents()
    }

    /// The equivalence intent id, or an error for benchmarks without one.
    pub fn equivalence_id(&self) -> Result<usize, CoreError> {
        self.benchmark.intents.equivalence_id().ok_or(CoreError::NoEquivalenceIntent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_datasets::AmazonMiConfig;
    use flexer_types::Scale;

    #[test]
    fn builds_and_exposes_splits() {
        let bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(2).generate();
        let n = bench.n_pairs();
        let ctx = PipelineContext::new(bench, &MatcherConfig::fast()).unwrap();
        let total = ctx.train_idx().len() + ctx.valid_idx().len() + ctx.test_idx().len();
        assert_eq!(total, n);
        assert_eq!(ctx.corpus.len(), n);
        assert_eq!(ctx.equivalence_id().unwrap(), 0);
        assert_eq!(ctx.n_intents(), 5);
    }

    #[test]
    fn rejects_corrupted_benchmark() {
        let mut bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(2).generate();
        bench.entity_maps.pop();
        let err = PipelineContext::new(bench, &MatcherConfig::fast()).unwrap_err();
        assert!(matches!(err, CoreError::InvalidBenchmark(_)));
    }
}
