//! The shared pipeline context: one benchmark, one featurized corpus.
//!
//! Featurization (the serialized-pair analogue of tokenizing for a
//! transformer) is intent-independent, so every model — Naïve,
//! In-parallel, Multi-label and FlexER — shares a single [`PairCorpus`],
//! exactly as the paper reuses one `C_train` with different labels.

use crate::error::CoreError;
use flexer_matcher::train::PairCorpus;
use flexer_matcher::MatcherConfig;
use flexer_types::{
    BlockingReport, CandidateGenConfig, LabelMatrix, MierBenchmark, Resolution, Split,
    SplitAssignment, SplitRatios,
};

/// A validated benchmark plus its featurized pair corpus.
#[derive(Debug, Clone)]
pub struct PipelineContext {
    /// The benchmark.
    pub benchmark: MierBenchmark,
    /// Featurized candidate pairs (shared across all models).
    pub corpus: PairCorpus,
}

impl PipelineContext {
    /// Validates the benchmark and featurizes its candidate set.
    pub fn new(benchmark: MierBenchmark, config: &MatcherConfig) -> Result<Self, CoreError> {
        benchmark.validate()?;
        if benchmark.candidates.is_empty() {
            return Err(CoreError::EmptyCandidateSet);
        }
        let corpus = PairCorpus::from_benchmark(&benchmark, config);
        Ok(Self { benchmark, corpus })
    }

    /// Builds a context whose candidate set comes from a configured
    /// blocking pass instead of the benchmark's shipped candidates: runs
    /// the [`CandidateGenConfig`] backend over the benchmark's records,
    /// relabels the surviving pairs from the benchmark's entity maps
    /// (ground truth is per-record, so blocked pairs label exactly like
    /// sampled ones), resplits 3:1:1, and featurizes. Returns the context
    /// plus the blocker's [`BlockingReport`].
    pub fn with_generated_candidates(
        mut benchmark: MierBenchmark,
        config: &MatcherConfig,
        candidates: &CandidateGenConfig,
        seed: u64,
    ) -> Result<(Self, BlockingReport), CoreError> {
        benchmark.validate().map_err(CoreError::InvalidBenchmark)?;
        let outcome = flexer_block::generator_for(candidates).generate(&benchmark.dataset);
        let columns = benchmark
            .entity_maps
            .iter()
            .map(|theta| Resolution::golden(&outcome.candidates, theta).map(|r| r.mask().to_vec()))
            .collect::<Result<Vec<_>, _>>()
            .map_err(CoreError::InvalidBenchmark)?;
        benchmark.labels =
            LabelMatrix::from_columns(&columns).map_err(CoreError::InvalidBenchmark)?;
        benchmark.splits = SplitAssignment::random(
            outcome.candidates.len(),
            SplitRatios::PAPER,
            seed ^ 0x0042_4c4b,
        )
        .map_err(CoreError::InvalidBenchmark)?;
        benchmark.candidates = outcome.candidates;
        Ok((Self::new(benchmark, config)?, outcome.report))
    }

    /// Train pair indices.
    pub fn train_idx(&self) -> Vec<usize> {
        self.benchmark.split_indices(Split::Train)
    }

    /// Validation pair indices.
    pub fn valid_idx(&self) -> Vec<usize> {
        self.benchmark.split_indices(Split::Valid)
    }

    /// Test pair indices.
    pub fn test_idx(&self) -> Vec<usize> {
        self.benchmark.split_indices(Split::Test)
    }

    /// Number of intents.
    pub fn n_intents(&self) -> usize {
        self.benchmark.n_intents()
    }

    /// The equivalence intent id, or an error for benchmarks without one.
    pub fn equivalence_id(&self) -> Result<usize, CoreError> {
        self.benchmark.intents.equivalence_id().ok_or(CoreError::NoEquivalenceIntent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_datasets::AmazonMiConfig;
    use flexer_types::Scale;

    #[test]
    fn builds_and_exposes_splits() {
        let bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(2).generate();
        let n = bench.n_pairs();
        let ctx = PipelineContext::new(bench, &MatcherConfig::fast()).unwrap();
        let total = ctx.train_idx().len() + ctx.valid_idx().len() + ctx.test_idx().len();
        assert_eq!(total, n);
        assert_eq!(ctx.corpus.len(), n);
        assert_eq!(ctx.equivalence_id().unwrap(), 0);
        assert_eq!(ctx.n_intents(), 5);
    }

    #[test]
    fn generated_candidates_relabel_and_split() {
        let bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(3).generate();
        let n_records = bench.dataset.len();
        let (ctx, report) = PipelineContext::with_generated_candidates(
            bench,
            &MatcherConfig::fast(),
            &CandidateGenConfig::default(),
            3,
        )
        .unwrap();
        ctx.benchmark.validate().unwrap();
        assert_eq!(ctx.benchmark.n_pairs(), report.candidates);
        assert!(report.candidates > 0, "a real corpus must block to something");
        assert!(report.retention(n_records) <= 1.0);
        assert_eq!(ctx.corpus.len(), ctx.benchmark.n_pairs());
        // Labels agree with ground truth on every surviving pair.
        for (i, pair) in ctx.benchmark.candidates.iter() {
            for (p, theta) in ctx.benchmark.entity_maps.iter().enumerate() {
                assert_eq!(
                    ctx.benchmark.labels.get(i, p),
                    theta.corresponds(pair.a, pair.b).unwrap()
                );
            }
        }
    }

    #[test]
    fn rejects_corrupted_benchmark() {
        let mut bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(2).generate();
        bench.entity_maps.pop();
        let err = PipelineContext::new(bench, &MatcherConfig::fast()).unwrap_err();
        assert!(matches!(err, CoreError::InvalidBenchmark(_)));
    }
}
