//! Disjoint-set forest for the merging phase: resolutions assume
//! reflexivity, symmetry and transitivity (§2.1), so matched pairs are
//! closed into equivalence classes before choosing representatives.

/// Union-find with path compression and union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n).collect(), rank: vec![0; n] }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns true if they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Groups elements into clusters (each sorted ascending; clusters
    /// ordered by their smallest element).
    pub fn clusters(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        for c in &mut out {
            c.sort_unstable();
        }
        out.sort_by_key(|c| c[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(3);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.clusters(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn union_connects_transitively() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(uf.connected(0, 2));
        assert!(!uf.union(0, 2)); // already merged
        assert_eq!(uf.clusters(), vec![vec![0, 1, 2], vec![3], vec![4]]);
    }

    #[test]
    fn symmetry_and_reflexivity() {
        let mut uf = UnionFind::new(4);
        uf.union(2, 3);
        assert!(uf.connected(3, 2));
        assert!(uf.connected(1, 1));
    }

    #[test]
    fn clusters_sorted_by_min_element() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 3);
        uf.union(4, 0);
        let c = uf.clusters();
        assert_eq!(c, vec![vec![0, 4], vec![1], vec![2], vec![3, 5]]);
    }

    #[test]
    fn empty() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.clusters().is_empty());
    }
}
