//! # flexer-core
//!
//! FlexER — flexible entity resolution for multiple intents (SIGMOD 2023),
//! end to end:
//!
//! * [`PipelineContext`] — a benchmark plus its featurized pair corpus,
//!   shared by every model;
//! * the three baselines of §3 / §5.2.4: [`NaiveModel`] (one-size-fits-all),
//!   [`InParallelModel`] (one binary matcher per intent) and
//!   [`MultiLabelModel`] (joint multi-label learning);
//! * [`FlexErModel`] (§4): per-intent matcher embeddings → multiplex
//!   intents graph → GraphSAGE GNN → per-intent predictions;
//! * the merging phase: [`clean_view()`](clean_view::clean_view) derives clean dataset views from a
//!   resolution (Examples 2.1/2.4);
//! * split-aware evaluation helpers bridging to `flexer-eval`.
//!
//! ```
//! use flexer_core::prelude::*;
//! use flexer_datasets::AmazonMiConfig;
//! use flexer_types::{Scale, Split};
//!
//! let bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(1).generate();
//! let ctx = PipelineContext::new(bench, &MatcherConfig::fast()).unwrap();
//! let base = InParallelModel::fit(&ctx, &MatcherConfig::fast()).unwrap();
//! let report = evaluate_on_split(&ctx.benchmark, &base.predictions, Split::Test);
//! assert!(report.mi_f1 > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod clean_view;
pub mod config;
pub mod context;
pub mod error;
pub mod flexer;
pub mod pipeline;
pub mod snapshot;
pub mod union_find;

pub use baselines::chain::ChainModel;
pub use baselines::in_parallel::InParallelModel;
pub use baselines::multi_label::MultiLabelModel;
pub use baselines::naive::NaiveModel;
pub use clean_view::{clean_view, CleanView};
pub use config::FlexErConfig;
pub use context::PipelineContext;
pub use error::CoreError;
pub use flexer::FlexErModel;
pub use pipeline::{evaluate_intent_on_split, evaluate_on_split};

/// Single-import surface.
pub mod prelude {
    pub use crate::baselines::chain::ChainModel;
    pub use crate::baselines::in_parallel::InParallelModel;
    pub use crate::baselines::multi_label::MultiLabelModel;
    pub use crate::baselines::naive::NaiveModel;
    pub use crate::clean_view::{clean_view, CleanView};
    pub use crate::config::FlexErConfig;
    pub use crate::context::PipelineContext;
    pub use crate::error::CoreError;
    pub use crate::flexer::FlexErModel;
    pub use crate::pipeline::{evaluate_intent_on_split, evaluate_on_split};
    pub use flexer_graph::GnnConfig;
    pub use flexer_matcher::MatcherConfig;
}
