//! The merging phase (§2.1, Examples 2.1 and 2.4): a resolution induces
//! equivalence classes over the dataset; one representative per class forms
//! the clean view `D'`. Representatives are "heuristically chosen by
//! order" — the smallest record id of each class, exactly the paper's
//! examples.

use crate::union_find::UnionFind;
use flexer_types::{CandidateSet, RecordId, Resolution};

/// Clusters and the derived clean view of a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CleanView {
    /// Equivalence classes (each sorted; ordered by smallest member).
    pub clusters: Vec<Vec<RecordId>>,
    /// The clean view `D'`: one representative per class, ascending.
    pub representatives: Vec<RecordId>,
}

/// Derives the clean view of a dataset of `n_records` records from a
/// resolution over a candidate set.
pub fn clean_view(
    n_records: usize,
    candidates: &CandidateSet,
    resolution: &Resolution,
) -> CleanView {
    let mut uf = UnionFind::new(n_records);
    for (idx, pair) in candidates.iter() {
        if resolution.contains(idx) {
            uf.union(pair.a, pair.b);
        }
    }
    let clusters = uf.clusters();
    let representatives = clusters.iter().map(|c| c[0]).collect();
    CleanView { clusters, representatives }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_types::PairRef;

    fn candidates(pairs: &[(usize, usize)]) -> CandidateSet {
        CandidateSet::from_pairs(pairs.iter().map(|&(a, b)| PairRef::new(a, b).unwrap()).collect())
    }

    /// Example 2.1: M = {(r1,r2), (r1,r3)} over six records clusters into
    /// {{r1,r2,r3},{r4},{r5},{r6}} with clean view {r1,r4,r5,r6}.
    /// (The paper's r1..r6 are our 0..5.)
    #[test]
    fn paper_example_2_1() {
        let c = candidates(&[(0, 1), (0, 2), (0, 3), (3, 4), (4, 5)]);
        let m = Resolution::from_indices(c.len(), &[0, 1]); // (r1,r2), (r1,r3)
        let view = clean_view(6, &c, &m);
        assert_eq!(view.clusters, vec![vec![0, 1, 2], vec![3], vec![4], vec![5]]);
        assert_eq!(view.representatives, vec![0, 3, 4, 5]);
    }

    /// Example 2.4's brand intent: pairs (r1,r2),(r2,r3),(r3,r4) matched ⇒
    /// clean view {r1,r5,r6}.
    #[test]
    fn paper_example_2_4_brand() {
        let c = candidates(&[(0, 1), (1, 2), (2, 3), (2, 4), (0, 5)]);
        let m = Resolution::from_indices(c.len(), &[0, 1, 2]);
        let view = clean_view(6, &c, &m);
        assert_eq!(view.representatives, vec![0, 4, 5]);
    }

    #[test]
    fn empty_resolution_keeps_every_record() {
        let c = candidates(&[(0, 1), (1, 2)]);
        let m = Resolution::empty(c.len());
        let view = clean_view(4, &c, &m);
        assert_eq!(view.representatives, vec![0, 1, 2, 3]);
    }

    #[test]
    fn transitive_closure_applied() {
        // (0,1) and (1,2) matched but (0,2) not a candidate at all: merging
        // still closes the class.
        let c = candidates(&[(0, 1), (1, 2)]);
        let m = Resolution::from_indices(c.len(), &[0, 1]);
        let view = clean_view(3, &c, &m);
        assert_eq!(view.clusters, vec![vec![0, 1, 2]]);
        assert_eq!(view.representatives, vec![0]);
    }

    #[test]
    fn records_outside_candidates_stay_singletons() {
        let c = candidates(&[(0, 1)]);
        let m = Resolution::from_indices(c.len(), &[0]);
        let view = clean_view(5, &c, &m);
        assert_eq!(view.representatives, vec![0, 2, 3, 4]);
    }

    #[test]
    fn representatives_are_cluster_minima() {
        let c = candidates(&[(4, 2), (2, 0)]);
        let m = Resolution::from_indices(c.len(), &[0, 1]);
        let view = clean_view(5, &c, &m);
        assert!(view.representatives.contains(&0));
        assert!(!view.representatives.contains(&2));
        assert!(!view.representatives.contains(&4));
    }
}
