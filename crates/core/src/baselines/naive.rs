//! The Naïve baseline (§5.2.4): one-size-fits-all — a single universal
//! (equivalence) matcher whose resolution is reused for *every* intent.
//! The paper uses it to show that a universal solution "is fairly small and
//! incomplete with respect to other interpretations": high precision, very
//! low recall on broader intents (Table 5).

use crate::context::PipelineContext;
use crate::error::CoreError;
use flexer_matcher::matcher::MatcherOutput;
use flexer_matcher::{BinaryMatcher, MatcherConfig};
use flexer_types::LabelMatrix;

/// The universal matcher applied to all intents.
#[derive(Debug, Clone)]
pub struct NaiveModel {
    /// The single equivalence matcher.
    pub matcher: BinaryMatcher,
    /// Its inference over every candidate pair.
    pub output: MatcherOutput,
    /// The equivalence prediction broadcast to every intent column.
    pub predictions: LabelMatrix,
}

impl NaiveModel {
    /// Trains the equivalence matcher and broadcasts its resolution.
    pub fn fit(ctx: &PipelineContext, config: &MatcherConfig) -> Result<Self, CoreError> {
        let eq = ctx.equivalence_id()?;
        let labels = ctx.benchmark.labels.column(eq);
        let matcher =
            BinaryMatcher::train(&ctx.corpus, &labels, &ctx.train_idx(), &ctx.valid_idx(), config);
        let output = matcher.infer(&ctx.corpus.features);
        let columns: Vec<Vec<bool>> = (0..ctx.n_intents()).map(|_| output.preds.clone()).collect();
        let predictions = LabelMatrix::from_columns(&columns).expect("P >= 1");
        Ok(Self { matcher, output, predictions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::evaluate_on_split;
    use flexer_datasets::AmazonMiConfig;
    use flexer_types::{Scale, Split};

    fn fit() -> (PipelineContext, NaiveModel) {
        let bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(29).generate();
        let config = MatcherConfig::fast();
        let ctx = PipelineContext::new(bench, &config).unwrap();
        let model = NaiveModel::fit(&ctx, &config).unwrap();
        (ctx, model)
    }

    #[test]
    fn broadcasts_equivalence_to_all_intents() {
        let (ctx, model) = fit();
        for i in 0..ctx.benchmark.n_pairs() {
            let row = model.predictions.row(i);
            assert!(row.iter().all(|&v| v == row[0]), "row {i} not constant");
        }
    }

    /// The paper's signature failure mode: recall collapses on broader
    /// intents while the equivalence intent itself stays strong.
    #[test]
    fn recall_collapses_on_broad_intents() {
        let (ctx, model) = fit();
        let report = evaluate_on_split(&ctx.benchmark, &model.predictions, Split::Test);
        let eq = report.per_intent[0];
        // Main-Cat. (intent 3) has ~67% positives; equivalence predictions
        // cover only ~15% of pairs, so recall must be far below eq recall.
        let broad = report.per_intent[3];
        assert!(broad.recall < 0.5, "broad recall = {:.3}", broad.recall);
        assert!(eq.recall > broad.recall);
        // MI-R is dragged down accordingly (Table 5's Naïve row).
        assert!(report.mi_recall < 0.65);
    }

    #[test]
    fn fails_without_equivalence_intent() {
        let bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(29).generate();
        let config = MatcherConfig::fast();
        let mut ctx = PipelineContext::new(bench, &config).unwrap();
        // Strip the equivalence flag.
        let names: Vec<String> = ctx.benchmark.intents.iter().map(|i| i.name.clone()).collect();
        ctx.benchmark.intents = flexer_types::IntentSet::new(
            names
                .into_iter()
                .enumerate()
                .map(|(i, name)| flexer_types::Intent { id: i, name, is_equivalence: false })
                .collect(),
        );
        assert!(matches!(NaiveModel::fit(&ctx, &config), Err(CoreError::NoEquivalenceIntent)));
    }
}
