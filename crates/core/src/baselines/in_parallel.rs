//! The in-parallel baseline (§3.2): one independently trained binary
//! matcher per intent — Read et al.'s binary-relevance decomposition of the
//! multi-label problem. Its per-intent `[cls]` embeddings are also the
//! default node initialization of FlexER's multiplex graph (§5.2.2).

use crate::context::PipelineContext;
use crate::error::CoreError;
use flexer_matcher::matcher::MatcherOutput;
use flexer_matcher::{BinaryMatcher, MatcherConfig};
use flexer_nn::Matrix;
use flexer_types::LabelMatrix;

/// `P` binary matchers with their full-candidate-set outputs.
#[derive(Debug, Clone)]
pub struct InParallelModel {
    /// One matcher per intent (id order).
    pub matchers: Vec<BinaryMatcher>,
    /// Per-intent inference over every candidate pair.
    pub outputs: Vec<MatcherOutput>,
    /// Predictions as a label matrix (pairs × intents).
    pub predictions: LabelMatrix,
}

impl InParallelModel {
    /// Trains `P` matchers, one per intent, each from its own seed so the
    /// latent spaces are independent (§4.1.1). The per-intent trainings are
    /// fully independent (binary relevance), so they fan out across the
    /// `flexer-par` thread budget; every intent keeps the same derived seed
    /// as the serial loop, making the result bit-identical at any thread
    /// count.
    pub fn fit(ctx: &PipelineContext, config: &MatcherConfig) -> Result<Self, CoreError> {
        let train = ctx.train_idx();
        let valid = ctx.valid_idx();
        let fitted = flexer_par::parallel_map(ctx.n_intents(), |p| {
            let labels = ctx.benchmark.labels.column(p);
            let intent_config = config.clone().with_seed(config.seed.wrapping_add(p as u64));
            let matcher =
                BinaryMatcher::train(&ctx.corpus, &labels, &train, &valid, &intent_config);
            let output = matcher.infer(&ctx.corpus.features);
            (matcher, output)
        });
        let mut matchers = Vec::with_capacity(fitted.len());
        let mut outputs = Vec::with_capacity(fitted.len());
        let mut columns: Vec<Vec<bool>> = Vec::with_capacity(fitted.len());
        for (matcher, output) in fitted {
            columns.push(output.preds.clone());
            matchers.push(matcher);
            outputs.push(output);
        }
        let predictions = LabelMatrix::from_columns(&columns).expect("P >= 1");
        Ok(Self { matchers, outputs, predictions })
    }

    /// The per-intent pair embeddings (node initializations for FlexER).
    pub fn embeddings(&self) -> Vec<&Matrix> {
        self.outputs.iter().map(|o| &o.embeddings).collect()
    }

    /// Number of intents.
    pub fn n_intents(&self) -> usize {
        self.matchers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::evaluate_on_split;
    use flexer_datasets::AmazonMiConfig;
    use flexer_types::{Scale, Split};

    fn fit() -> (PipelineContext, InParallelModel) {
        let bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(23).generate();
        let config = MatcherConfig::fast();
        let ctx = PipelineContext::new(bench, &config).unwrap();
        let model = InParallelModel::fit(&ctx, &config).unwrap();
        (ctx, model)
    }

    #[test]
    fn one_matcher_per_intent() {
        let (ctx, model) = fit();
        assert_eq!(model.n_intents(), ctx.n_intents());
        assert_eq!(model.predictions.n_pairs(), ctx.benchmark.n_pairs());
        assert_eq!(model.embeddings().len(), ctx.n_intents());
    }

    #[test]
    fn solves_mier_above_chance() {
        let (ctx, model) = fit();
        let report = evaluate_on_split(&ctx.benchmark, &model.predictions, Split::Test);
        assert!(report.mi_f1 > 0.6, "MI-F = {:.3}", report.mi_f1);
        assert!(report.mi_accuracy > 0.4, "MI-Acc = {:.3}", report.mi_accuracy);
    }

    #[test]
    fn matchers_trained_independently() {
        let (_, model) = fit();
        // Different seeds per intent ⇒ different embeddings even where
        // predictions agree.
        let e = model.embeddings();
        let mut diff = 0.0f32;
        for i in 0..e[0].rows().min(50) {
            diff += flexer_nn::Matrix::row_l2_sq(e[0], i, e[1], i);
        }
        assert!(diff > 1e-3);
    }
}
