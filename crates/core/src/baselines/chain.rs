//! Classifier chains — the other decomposition of Read et al. \[48\].
//!
//! The paper adopts binary relevance ("in-parallel") from Read et al.; the
//! same work's headline method is the *classifier chain*: train intents
//! sequentially, feeding each matcher the predictions of the intents
//! before it in the chain. Chains capture intent interrelationships
//! *explicitly through features* rather than through FlexER's learned
//! message passing — a natural middle ground between In-parallel and
//! FlexER, included here as an extension baseline (stacked variant:
//! predicted labels are used both at training and inference time, which
//! avoids train/test feature skew).

use crate::context::PipelineContext;
use crate::error::CoreError;
use flexer_matcher::MatcherConfig;
use flexer_nn::activation::{relu_backward_inplace, relu_inplace, softmax_rows};
use flexer_nn::loss::softmax_cross_entropy;
use flexer_nn::{Adam, AdamConfig, Linear, Mlp, MlpConfig, Optimizer, SparseMatrix};
use flexer_types::{IntentId, LabelMatrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A trained classifier chain over `P` intents.
#[derive(Debug, Clone)]
pub struct ChainModel {
    /// The chain order (intent ids, first trained first).
    pub order: Vec<IntentId>,
    /// Predictions over every candidate pair.
    pub predictions: LabelMatrix,
    /// Match likelihood per (pair, intent).
    pub scores: Vec<Vec<f32>>,
}

impl ChainModel {
    /// Trains the chain in ascending intent-id order.
    pub fn fit(ctx: &PipelineContext, config: &MatcherConfig) -> Result<Self, CoreError> {
        let order: Vec<IntentId> = (0..ctx.n_intents()).collect();
        Self::fit_with_order(ctx, config, &order)
    }

    /// Trains the chain in an explicit order (e.g. broad-to-narrow so the
    /// narrow intents can consume the broad predictions).
    pub fn fit_with_order(
        ctx: &PipelineContext,
        config: &MatcherConfig,
        order: &[IntentId],
    ) -> Result<Self, CoreError> {
        let n_intents = ctx.n_intents();
        if order.is_empty() {
            return Err(CoreError::EmptyIntentSubset);
        }
        let mut seen = vec![false; n_intents];
        for &p in order {
            if p >= n_intents {
                return Err(CoreError::IntentOutOfRange(p, n_intents));
            }
            seen[p] = true;
        }
        if seen.iter().any(|&s| !s) {
            return Err(CoreError::IntentOutOfRange(order.len(), n_intents));
        }

        let base_dim = ctx.corpus.featurizer.total_dim();
        let n_pairs = ctx.benchmark.n_pairs();
        let train = ctx.train_idx();
        let valid = ctx.valid_idx();

        // Chain features: one extra column per already-trained intent,
        // carrying its predicted likelihood (scaled to match hashed-feature
        // magnitudes).
        let mut chain_scores: Vec<Vec<f32>> = Vec::new();
        let mut scores_by_intent: Vec<Vec<f32>> = vec![Vec::new(); n_intents];
        let mut preds_by_intent: Vec<Vec<bool>> = vec![Vec::new(); n_intents];

        for (step, &intent) in order.iter().enumerate() {
            let total_dim = base_dim + step;
            // Assemble the augmented sparse matrix for this step.
            let rows: Vec<Vec<(u32, f32)>> = (0..n_pairs)
                .map(|i| {
                    let (cols, vals) = ctx.corpus.features.row(i);
                    let mut row: Vec<(u32, f32)> =
                        cols.iter().copied().zip(vals.iter().copied()).collect();
                    for (q, prev) in chain_scores.iter().enumerate() {
                        row.push(((base_dim + q) as u32, prev[i]));
                    }
                    row
                })
                .collect();
            let features = SparseMatrix::from_rows(total_dim, &rows);
            let labels = ctx.benchmark.labels.column(intent);
            let seed = config.seed.wrapping_add(0xC4A1).wrapping_add(intent as u64);
            let (scores, preds) = train_link(&features, &labels, &train, &valid, config, seed);
            chain_scores.push(scores.clone());
            scores_by_intent[intent] = scores;
            preds_by_intent[intent] = preds;
        }

        let predictions = LabelMatrix::from_columns(&preds_by_intent).expect("P >= 1");
        Ok(Self { order: order.to_vec(), predictions, scores: scores_by_intent })
    }
}

/// Trains one chain link: sparse input layer + small MLP head, CE loss,
/// Adam, validation-F1 model selection — the same recipe as
/// `BinaryMatcher` but over the augmented feature space.
fn train_link(
    features: &SparseMatrix,
    labels: &[bool],
    train_idx: &[usize],
    valid_idx: &[usize],
    config: &MatcherConfig,
    seed: u64,
) -> (Vec<f32>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut input = Linear::new(&mut rng, features.cols(), config.hidden_dim);
    let mut head = Mlp::new(
        &mut rng,
        &MlpConfig {
            input_dim: config.hidden_dim,
            hidden: vec![config.embedding_dim],
            output_dim: 2,
        },
    );
    let mut opt = Adam::new(AdamConfig { lr: config.learning_rate, ..Default::default() });

    let infer = |input: &Linear, head: &Mlp, x: &SparseMatrix| -> Vec<f32> {
        let mut h = input.forward_sparse(x);
        relu_inplace(&mut h);
        let probs = softmax_rows(&head.forward(&h));
        (0..probs.rows()).map(|i| probs.get(i, 1)).collect()
    };

    let mut best: Option<(f64, Vec<f32>)> = None;
    for _epoch in 0..config.epochs {
        let mut order: Vec<usize> = train_idx.to_vec();
        order.shuffle(&mut rng);
        for batch in order.chunks(config.batch_size.max(1)) {
            let x = features.select_rows(batch);
            let targets: Vec<usize> = batch.iter().map(|&i| labels[i] as usize).collect();
            let mut h = input.forward_sparse(&x);
            relu_inplace(&mut h);
            let trace = head.forward_trace(&h);
            let (_, grad_logits) = softmax_cross_entropy(trace.output(), &targets, None);
            input.zero_grad();
            head.zero_grad();
            let mut dh = head.backward(&trace, &grad_logits);
            relu_backward_inplace(&mut dh, &h);
            input.backward_sparse(&x, &dh);
            opt.begin_step();
            let used = input.apply(&mut opt, 0);
            head.apply(&mut opt, used);
        }
        let scores = infer(&input, &head, features);
        let vp: Vec<bool> = valid_idx.iter().map(|&i| scores[i] > 0.5).collect();
        let vl: Vec<bool> = valid_idx.iter().map(|&i| labels[i]).collect();
        let f1 = f1(&vp, &vl);
        if best.as_ref().map_or(true, |(b, _)| f1 > *b) {
            best = Some((f1, scores));
        }
    }
    let (_, scores) = best.expect("epochs >= 1");
    let preds = scores.iter().map(|&s| s > 0.5).collect();
    (scores, preds)
}

fn f1(preds: &[bool], labels: &[bool]) -> f64 {
    let tp = preds.iter().zip(labels).filter(|(&p, &l)| p && l).count() as f64;
    let fp = preds.iter().zip(labels).filter(|(&p, &l)| p && !l).count() as f64;
    let fn_ = preds.iter().zip(labels).filter(|(&p, &l)| !p && l).count() as f64;
    if tp == 0.0 {
        0.0
    } else {
        2.0 * tp / (2.0 * tp + fp + fn_)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::evaluate_on_split;
    use flexer_datasets::AmazonMiConfig;
    use flexer_types::{Scale, Split};

    fn ctx() -> (PipelineContext, MatcherConfig) {
        let bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(61).generate();
        let config = MatcherConfig::fast();
        let ctx = PipelineContext::new(bench, &config).unwrap();
        (ctx, config)
    }

    #[test]
    fn chain_fits_and_solves_mier() {
        let (ctx, config) = ctx();
        let chain = ChainModel::fit(&ctx, &config).unwrap();
        assert_eq!(chain.order, vec![0, 1, 2, 3, 4]);
        assert_eq!(chain.predictions.n_intents(), ctx.n_intents());
        let report = evaluate_on_split(&ctx.benchmark, &chain.predictions, Split::Test);
        assert!(report.mi_f1 > 0.55, "MI-F = {:.3}", report.mi_f1);
    }

    #[test]
    fn custom_order_broad_to_narrow() {
        let (ctx, config) = ctx();
        // Main-Cat first, Eq last: narrow intents see broad predictions.
        let chain = ChainModel::fit_with_order(&ctx, &config, &[3, 2, 4, 1, 0]).unwrap();
        assert_eq!(chain.order[0], 3);
        let report = evaluate_on_split(&ctx.benchmark, &chain.predictions, Split::Test);
        assert!(report.mi_f1 > 0.55, "MI-F = {:.3}", report.mi_f1);
    }

    #[test]
    fn order_validation() {
        let (ctx, config) = ctx();
        assert!(matches!(
            ChainModel::fit_with_order(&ctx, &config, &[]),
            Err(CoreError::EmptyIntentSubset)
        ));
        assert!(ChainModel::fit_with_order(&ctx, &config, &[0, 1, 9, 2, 3]).is_err());
        // Missing intents are rejected too.
        assert!(ChainModel::fit_with_order(&ctx, &config, &[0, 1]).is_err());
    }

    #[test]
    fn scores_align_with_predictions() {
        let (ctx, config) = ctx();
        let chain = ChainModel::fit(&ctx, &config).unwrap();
        for p in 0..ctx.n_intents() {
            for i in 0..ctx.benchmark.n_pairs() {
                assert_eq!(chain.predictions.get(i, p), chain.scores[p][i] > 0.5);
            }
        }
    }
}
