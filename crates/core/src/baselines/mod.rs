//! The baselines of §3 and §5.2.4 — Naïve, In-parallel and Multi-label —
//! plus the classifier-chain extension (Read et al. \[48\]'s other
//! decomposition).

pub mod chain;
pub mod in_parallel;
pub mod multi_label;
pub mod naive;
