//! The multi-label baseline (§3.3): one jointly trained multi-task matcher
//! — a single training phase for all intents, whose per-intent heads yield
//! the resolutions and whose per-intent embedding layers provide an
//! alternative node initialization for FlexER (§5.2.2).

use crate::context::PipelineContext;
use crate::error::CoreError;
use flexer_matcher::matcher::MatcherOutput;
use flexer_matcher::{MatcherConfig, MultiTaskMatcher};
use flexer_nn::Matrix;
use flexer_types::LabelMatrix;

/// The jointly trained multi-label model.
#[derive(Debug, Clone)]
pub struct MultiLabelModel {
    /// The shared-trunk multi-task matcher.
    pub matcher: MultiTaskMatcher,
    /// Per-intent inference over every candidate pair.
    pub outputs: Vec<MatcherOutput>,
    /// Predictions as a label matrix.
    pub predictions: LabelMatrix,
}

impl MultiLabelModel {
    /// Trains the multi-task network on all intents jointly. Training is a
    /// single shared phase (§3.3), but the per-intent head inferences over
    /// the full candidate set are independent and fan out across the
    /// `flexer-par` thread budget.
    pub fn fit(ctx: &PipelineContext, config: &MatcherConfig) -> Result<Self, CoreError> {
        let matcher = MultiTaskMatcher::train(
            &ctx.corpus,
            &ctx.benchmark.labels,
            &ctx.train_idx(),
            &ctx.valid_idx(),
            config,
        );
        let outputs: Vec<MatcherOutput> = flexer_par::parallel_map(ctx.n_intents(), |p| {
            matcher.infer_intent(&ctx.corpus.features, p)
        });
        let columns: Vec<Vec<bool>> = outputs.iter().map(|o| o.preds.clone()).collect();
        let predictions = LabelMatrix::from_columns(&columns).expect("P >= 1");
        Ok(Self { matcher, outputs, predictions })
    }

    /// Per-intent embeddings (the §5.2.2 multi-task representation).
    pub fn embeddings(&self) -> Vec<&Matrix> {
        self.outputs.iter().map(|o| &o.embeddings).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::evaluate_on_split;
    use flexer_datasets::AmazonMiConfig;
    use flexer_types::{Scale, Split};

    #[test]
    fn fits_and_predicts_all_intents() {
        let bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(31).generate();
        let config = MatcherConfig { epochs: 25, ..MatcherConfig::fast() };
        let ctx = PipelineContext::new(bench, &config).unwrap();
        let model = MultiLabelModel::fit(&ctx, &config).unwrap();
        assert_eq!(model.predictions.n_intents(), ctx.n_intents());
        assert_eq!(model.embeddings().len(), ctx.n_intents());
        let report = evaluate_on_split(&ctx.benchmark, &model.predictions, Split::Test);
        assert!(report.mi_f1 > 0.55, "MI-F = {:.3}", report.mi_f1);
    }
}
