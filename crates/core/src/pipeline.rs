//! Split-aware evaluation: the bridge between model predictions (over the
//! whole candidate set, transductively) and the paper's test-set metrics.

use flexer_eval::{BinaryReport, MultiIntentReport};
use flexer_types::{IntentId, LabelMatrix, MierBenchmark, Split};

/// Evaluates a prediction matrix against the benchmark's golden labels,
/// restricted to one split (the paper reports `Split::Test`).
pub fn evaluate_on_split(
    bench: &MierBenchmark,
    predictions: &LabelMatrix,
    split: Split,
) -> MultiIntentReport {
    let idx = bench.split_indices(split);
    let preds = predictions.select_pairs(&idx);
    let golden = bench.labels.select_pairs(&idx);
    MultiIntentReport::evaluate(&preds, &golden)
}

/// Single-intent slice of the same evaluation (Tables 6–7).
pub fn evaluate_intent_on_split(
    bench: &MierBenchmark,
    predictions: &LabelMatrix,
    intent: IntentId,
    split: Split,
) -> BinaryReport {
    let idx = bench.split_indices(split);
    let preds: Vec<bool> = idx.iter().map(|&i| predictions.get(i, intent)).collect();
    let golden: Vec<bool> = idx.iter().map(|&i| bench.labels.get(i, intent)).collect();
    BinaryReport::from_predictions(&preds, &golden)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_datasets::AmazonMiConfig;
    use flexer_types::Scale;

    #[test]
    fn golden_predictions_score_one() {
        let bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(5).generate();
        let report = evaluate_on_split(&bench, &bench.labels, Split::Test);
        assert_eq!(report.mi_f1, 1.0);
        assert_eq!(report.mi_accuracy, 1.0);
        for p in 0..bench.n_intents() {
            let r = evaluate_intent_on_split(&bench, &bench.labels, p, Split::Test);
            assert_eq!(r.f1, 1.0);
        }
    }

    #[test]
    fn all_negative_predictions_have_zero_recall() {
        let bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(5).generate();
        let zeros = LabelMatrix::zeros(bench.n_pairs(), bench.n_intents());
        let report = evaluate_on_split(&bench, &zeros, Split::Test);
        assert_eq!(report.mi_recall, 0.0);
        assert_eq!(report.mi_f1, 0.0);
    }

    #[test]
    fn split_restriction_differs_from_full_set() {
        let bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(5).generate();
        // Predict golden on test rows, zeros elsewhere: test metrics perfect,
        // train metrics poor — proving the restriction takes effect.
        let mut partial = LabelMatrix::zeros(bench.n_pairs(), bench.n_intents());
        for &i in &bench.split_indices(Split::Test) {
            for p in 0..bench.n_intents() {
                partial.set(i, p, bench.labels.get(i, p));
            }
        }
        let test = evaluate_on_split(&bench, &partial, Split::Test);
        let train = evaluate_on_split(&bench, &partial, Split::Train);
        assert_eq!(test.mi_f1, 1.0);
        assert!(train.mi_f1 < 0.1);
    }
}
