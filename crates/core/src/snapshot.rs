//! Export a trained [`FlexErModel`] into a `flexer-store` snapshot (and
//! reassemble one from it).
//!
//! The export bundles what no single stage owns by itself: the pipeline
//! context contributes the corpus (records, pairs, featurizer, document
//! frequencies, intents), the in-parallel base contributes the per-intent
//! matcher weights (§4.1.1's intent-based representations), and the model
//! contributes the multiplex graph, the P trained GNNs and the batch
//! predictions. Per intent layer, an ANN index is built over that layer's
//! slice of the stacked graph features — the *initial* representations the
//! paper fixes the intra-layer k-NN on (§4.1.3) — so a serving tier can
//! wire new nodes incrementally.

use crate::baselines::in_parallel::InParallelModel;
use crate::config::FlexErConfig;
use crate::context::PipelineContext;
use crate::error::CoreError;
use crate::flexer::FlexErModel;
use flexer_ann::{AnyIndex, FlatIndex, IvfIndex};
use flexer_block::BlockerState;
use flexer_store::{IndexKind, ModelSnapshot};

impl FlexErModel {
    /// Packages this trained model (plus its representation stage and
    /// corpus context) into a self-contained snapshot.
    ///
    /// `index` selects the per-layer ANN variant: [`IndexKind::Flat`] for
    /// exact search (the paper's default) or [`IndexKind::Ivf`] for the
    /// §5.7 heuristic at scale.
    pub fn to_snapshot(
        &self,
        ctx: &PipelineContext,
        base: &InParallelModel,
        config: &FlexErConfig,
        index: IndexKind,
    ) -> Result<ModelSnapshot, CoreError> {
        let p = ctx.n_intents();
        if base.n_intents() != p {
            return Err(CoreError::IntentOutOfRange(base.n_intents(), p));
        }
        if self.graph.n_layers != p {
            return Err(CoreError::IntentOutOfRange(self.graph.n_layers, p));
        }
        let n_pairs = self.graph.n_pairs;
        let dim = self.graph.dim;

        // One index per intent layer over that layer's block of the
        // stacked initial representations (rows are layer-major, so each
        // block is contiguous).
        let indexes: Vec<AnyIndex> = (0..p)
            .map(|q| {
                let block = &self.graph.features.data()[q * n_pairs * dim..(q + 1) * n_pairs * dim];
                match index {
                    IndexKind::Flat => AnyIndex::Flat(FlatIndex::from_rows(dim, block)),
                    IndexKind::Ivf(ivf_config) => {
                        AnyIndex::Ivf(IvfIndex::build(dim, block, ivf_config))
                    }
                }
            })
            .collect();

        let records: Vec<String> =
            ctx.benchmark.dataset.iter().map(|r| r.title().to_string()).collect();
        let pairs: Vec<(u32, u32)> =
            ctx.benchmark.candidates.iter().map(|(_, pr)| (pr.a as u32, pr.b as u32)).collect();
        // The candidate-generation tier ships with the model: the serving
        // side resumes blocking from this state instead of rebuilding it.
        let blocker = BlockerState::build(&config.candidates, records.iter().map(|r| r.as_str()));

        Ok(ModelSnapshot {
            intents: ctx.benchmark.intents.clone(),
            k: config.k,
            records,
            pairs,
            featurizer: ctx.corpus.featurizer.clone(),
            df: ctx.corpus.df.clone(),
            matchers: base.matchers.clone(),
            graph: self.graph.clone(),
            trained: self.trained.clone(),
            predictions: self.predictions.clone(),
            indexes,
            blocker,
            // Exporters emit the monolithic layout; the serving tier
            // re-partitions into shard frames on demand.
            sharding: None,
        })
    }

    /// Reassembles the batch model held inside a snapshot.
    pub fn from_snapshot(snapshot: &ModelSnapshot) -> Self {
        Self {
            graph: snapshot.graph.clone(),
            trained: snapshot.trained.clone(),
            predictions: snapshot.predictions.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_datasets::AmazonMiConfig;
    use flexer_types::Scale;

    fn trained() -> (PipelineContext, InParallelModel, FlexErModel, FlexErConfig) {
        let bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(41).generate();
        let config = FlexErConfig::fast();
        let ctx = PipelineContext::new(bench, &config.matcher).unwrap();
        let base = InParallelModel::fit(&ctx, &config.matcher).unwrap();
        let model = FlexErModel::fit_from_embeddings(&ctx, &base.embeddings(), &config).unwrap();
        (ctx, base, model, config)
    }

    #[test]
    fn export_validates_and_roundtrips_bytes() {
        let (ctx, base, model, config) = trained();
        let snapshot = model.to_snapshot(&ctx, &base, &config, IndexKind::Flat).unwrap();
        snapshot.validate().unwrap();
        assert_eq!(snapshot.n_intents(), ctx.n_intents());
        assert_eq!(snapshot.n_pairs(), ctx.benchmark.n_pairs());
        assert_eq!(snapshot.k, config.k);

        // save → load → save is byte-identical (the acceptance invariant).
        let bytes = snapshot.to_bytes();
        let reloaded = ModelSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(reloaded.to_bytes(), bytes);

        // The reassembled batch model carries identical predictions.
        let rebuilt = FlexErModel::from_snapshot(&reloaded);
        assert_eq!(rebuilt.predictions, model.predictions);
        for (a, b) in rebuilt.trained.iter().zip(&model.trained) {
            assert_eq!(a.scores, b.scores);
            assert_eq!(a.preds, b.preds);
        }
    }

    #[test]
    fn export_with_ivf_indexes() {
        let (ctx, base, model, config) = trained();
        let ivf = flexer_ann::IvfConfig { nlist: 8, nprobe: 4, ..Default::default() };
        let snapshot = model.to_snapshot(&ctx, &base, &config, IndexKind::Ivf(ivf)).unwrap();
        snapshot.validate().unwrap();
        assert!(snapshot.indexes.iter().all(|i| matches!(i, AnyIndex::Ivf(_))));
        let bytes = snapshot.to_bytes();
        assert_eq!(ModelSnapshot::from_bytes(&bytes).unwrap().to_bytes(), bytes);
    }
}
