//! Errors of the FlexER pipeline.

use flexer_types::TypesError;
use std::fmt;

/// Pipeline-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The benchmark failed internal validation.
    InvalidBenchmark(TypesError),
    /// A model that needs the equivalence intent got a benchmark without
    /// one (the Naïve baseline, Table 6 slices).
    NoEquivalenceIntent,
    /// The candidate set is empty — nothing to resolve.
    EmptyCandidateSet,
    /// An intent id was out of range; holds `(intent, n_intents)`.
    IntentOutOfRange(usize, usize),
    /// A requested intent subset was empty.
    EmptyIntentSubset,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidBenchmark(e) => write!(f, "invalid benchmark: {e}"),
            CoreError::NoEquivalenceIntent => {
                write!(f, "the benchmark declares no equivalence intent")
            }
            CoreError::EmptyCandidateSet => write!(f, "the candidate set is empty"),
            CoreError::IntentOutOfRange(p, n) => {
                write!(f, "intent {p} out of range (benchmark has {n})")
            }
            CoreError::EmptyIntentSubset => write!(f, "intent subset must be non-empty"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::InvalidBenchmark(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TypesError> for CoreError {
    fn from(e: TypesError) -> Self {
        CoreError::InvalidBenchmark(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidBenchmark(TypesError::NoIntents);
        assert!(e.to_string().contains("invalid benchmark"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&CoreError::NoEquivalenceIntent).is_none());
        assert!(CoreError::IntentOutOfRange(7, 3).to_string().contains('7'));
    }

    #[test]
    fn from_types_error() {
        let e: CoreError = TypesError::NoIntents.into();
        assert!(matches!(e, CoreError::InvalidBenchmark(_)));
    }
}
