//! FlexER configuration.

use flexer_graph::GnnConfig;
use flexer_matcher::MatcherConfig;
use flexer_types::CandidateGenConfig;

/// Which matcher provides the intent-based representations that initialize
/// the multiplex graph (§5.2.2 describes both; §5.3–5.4 report the
/// independent ones, our default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepresentationSource {
    /// Independent per-intent matchers (the in-parallel baseline).
    #[default]
    InParallel,
    /// The per-intent embedding layers of the multi-task network.
    MultiTask,
}

/// End-to-end FlexER configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FlexErConfig {
    /// Matcher (representation) stage.
    pub matcher: MatcherConfig,
    /// GNN stage.
    pub gnn: GnnConfig,
    /// Intra-layer nearest-neighbour count `k ∈ {0,2,4,6,8,10}` (§5.2.1);
    /// 0 disables intra-layer edges.
    pub k: usize,
    /// Representation source.
    pub representation: RepresentationSource,
    /// Candidate-generation backend: which blocker produces candidate
    /// pairs, and the incremental blocker state snapshots carry for the
    /// serving tier.
    pub candidates: CandidateGenConfig,
}

impl Default for FlexErConfig {
    fn default() -> Self {
        Self {
            matcher: MatcherConfig::default(),
            gnn: GnnConfig::default(),
            k: 6,
            representation: RepresentationSource::InParallel,
            candidates: CandidateGenConfig::default(),
        }
    }
}

impl FlexErConfig {
    /// A fast preset for unit tests.
    pub fn fast() -> Self {
        Self { matcher: MatcherConfig::fast(), gnn: GnnConfig::fast(), k: 4, ..Default::default() }
    }

    /// Sets `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets both stage seeds.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.matcher.seed = seed;
        self.gnn.seed = seed;
        self
    }

    /// Sets the candidate-generation backend.
    pub fn with_candidates(mut self, candidates: CandidateGenConfig) -> Self {
        self.candidates = candidates;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper() {
        let c = FlexErConfig::default();
        assert_eq!(c.k, 6);
        assert_eq!(c.gnn.learning_rate, 0.01);
        assert_eq!(c.representation, RepresentationSource::InParallel);
        assert_eq!(c.candidates.name(), "ngram");
    }

    #[test]
    fn builders() {
        let c = FlexErConfig::fast().with_k(2).with_seed(7);
        assert_eq!(c.k, 2);
        assert_eq!(c.matcher.seed, 7);
        assert_eq!(c.gnn.seed, 7);
    }
}
