//! FlexER (§4): intent-based representations → multiplex intents graph →
//! GNN → per-intent predictions.
//!
//! The three phases of the paper map directly onto this module:
//! *graph creation* ([`flexer_graph::build_intent_graph`] over the matcher
//! embeddings), *message propagation* (the GraphSAGE layers), and
//! *prediction per intent* — "FlexER is trained over P versions of the same
//! graph, one for each intent, to allow proper fine-tuning with respect to
//! the target intent" (§4.3).
//!
//! The *P* per-intent GNNs are trained on independent copies of the model
//! state over a shared read-only graph, so [`FlexErModel::fit_from_embeddings`]
//! fans them out across the `flexer-par` thread budget. Each intent keeps
//! its own derived seed (`gnn.seed + p`), exactly as in the serial loop, so
//! predictions are bit-identical for any thread count (set
//! `RAYON_NUM_THREADS=1` to force serial execution).

use crate::baselines::in_parallel::InParallelModel;
use crate::baselines::multi_label::MultiLabelModel;
use crate::config::{FlexErConfig, RepresentationSource};
use crate::context::PipelineContext;
use crate::error::CoreError;
use flexer_graph::{build_intent_graph, train_for_intent, MultiplexGraph, TrainedGnn};
use flexer_nn::Matrix;
use flexer_types::{IntentId, LabelMatrix};

/// A fully trained FlexER model.
#[derive(Debug, Clone)]
pub struct FlexErModel {
    /// The multiplex intents graph (all intents).
    pub graph: MultiplexGraph,
    /// One trained GNN per target intent.
    pub trained: Vec<TrainedGnn>,
    /// Per-intent predictions over every candidate pair.
    pub predictions: LabelMatrix,
}

impl FlexErModel {
    /// Fits FlexER end to end, training its own representation stage
    /// according to `config.representation`.
    pub fn fit(ctx: &PipelineContext, config: &FlexErConfig) -> Result<Self, CoreError> {
        let embeddings: Vec<Matrix> = match config.representation {
            RepresentationSource::InParallel => {
                let base = InParallelModel::fit(ctx, &config.matcher)?;
                base.outputs.into_iter().map(|o| o.embeddings).collect()
            }
            RepresentationSource::MultiTask => {
                let base = MultiLabelModel::fit(ctx, &config.matcher)?;
                base.outputs.into_iter().map(|o| o.embeddings).collect()
            }
        };
        let refs: Vec<&Matrix> = embeddings.iter().collect();
        Self::fit_from_embeddings(ctx, &refs, config)
    }

    /// Fits the graph + GNN stages from existing per-intent embeddings
    /// (lets the harness reuse one in-parallel base across FlexER variants,
    /// as the paper reuses its DITTO representations).
    pub fn fit_from_embeddings(
        ctx: &PipelineContext,
        embeddings: &[&Matrix],
        config: &FlexErConfig,
    ) -> Result<Self, CoreError> {
        let n_intents = ctx.n_intents();
        if embeddings.len() != n_intents {
            return Err(CoreError::IntentOutOfRange(embeddings.len(), n_intents));
        }
        // Graph construction borrows the embeddings directly — no
        // P × |C| × d copy of the representation matrices.
        let graph = build_intent_graph(embeddings, config.k);
        let train = ctx.train_idx();
        let valid = ctx.valid_idx();
        // "P versions of the same graph": the per-intent trainings share the
        // read-only graph and are independent, so fan them out. Each keeps
        // the same derived seed as the serial loop ⇒ bit-identical output.
        let trained = flexer_par::parallel_map(n_intents, |p| {
            let labels = ctx.benchmark.labels.column(p);
            let gnn_config = config.gnn.clone().with_seed(config.gnn.seed.wrapping_add(p as u64));
            train_for_intent(&graph, p, &labels, &train, &valid, &gnn_config)
        });
        let columns: Vec<Vec<bool>> = trained.iter().map(|t| t.preds.clone()).collect();
        let predictions = LabelMatrix::from_columns(&columns).expect("P >= 1");
        Ok(Self { graph, trained, predictions })
    }

    /// Fits FlexER over a *subset* of intent layers and returns the trained
    /// GNN for one target intent — the §5.5.1 intent-interrelationship
    /// analysis (Figure 6 builds the graph with every subset containing the
    /// equivalence intent).
    ///
    /// `embeddings` are the full per-intent representations; `subset` lists
    /// the intent ids whose layers enter the graph; `target` must be a
    /// member of `subset`.
    pub fn fit_subset_for_target(
        ctx: &PipelineContext,
        embeddings: &[&Matrix],
        subset: &[IntentId],
        target: IntentId,
        config: &FlexErConfig,
    ) -> Result<TrainedGnn, CoreError> {
        if subset.is_empty() {
            return Err(CoreError::EmptyIntentSubset);
        }
        let n_intents = ctx.n_intents();
        for &p in subset {
            if p >= n_intents {
                return Err(CoreError::IntentOutOfRange(p, n_intents));
            }
        }
        let target_pos = subset
            .iter()
            .position(|&p| p == target)
            .ok_or(CoreError::IntentOutOfRange(target, subset.len()))?;
        let layers: Vec<&Matrix> = subset.iter().map(|&p| embeddings[p]).collect();
        let graph = build_intent_graph(&layers, config.k);
        let labels = ctx.benchmark.labels.column(target);
        let gnn_config = config.gnn.clone().with_seed(config.gnn.seed.wrapping_add(target as u64));
        Ok(train_for_intent(
            &graph,
            target_pos,
            &labels,
            &ctx.train_idx(),
            &ctx.valid_idx(),
            &gnn_config,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::evaluate_on_split;
    use flexer_datasets::AmazonMiConfig;
    use flexer_types::{Scale, Split};

    fn setup() -> (PipelineContext, InParallelModel, FlexErConfig) {
        let bench = AmazonMiConfig::at_scale(Scale::Tiny).with_seed(41).generate();
        let config = FlexErConfig::fast();
        let ctx = PipelineContext::new(bench, &config.matcher).unwrap();
        let base = InParallelModel::fit(&ctx, &config.matcher).unwrap();
        (ctx, base, config)
    }

    #[test]
    fn full_fit_produces_all_intent_predictions() {
        let (ctx, base, config) = setup();
        let model = FlexErModel::fit_from_embeddings(&ctx, &base.embeddings(), &config).unwrap();
        assert_eq!(model.predictions.n_intents(), ctx.n_intents());
        assert_eq!(model.predictions.n_pairs(), ctx.benchmark.n_pairs());
        assert_eq!(model.graph.n_layers, ctx.n_intents());
        assert_eq!(model.trained.len(), ctx.n_intents());
        let report = evaluate_on_split(&ctx.benchmark, &model.predictions, Split::Test);
        assert!(report.mi_f1 > 0.6, "MI-F = {:.3}", report.mi_f1);
    }

    #[test]
    fn subset_fit_trains_requested_target() {
        let (ctx, base, config) = setup();
        let eq = ctx.equivalence_id().unwrap();
        let trained =
            FlexErModel::fit_subset_for_target(&ctx, &base.embeddings(), &[eq, 1], eq, &config)
                .unwrap();
        assert_eq!(trained.preds.len(), ctx.benchmark.n_pairs());
        assert!(trained.best_valid_f1 > 0.0);
    }

    #[test]
    fn subset_errors() {
        let (ctx, base, config) = setup();
        let e = base.embeddings();
        assert!(matches!(
            FlexErModel::fit_subset_for_target(&ctx, &e, &[], 0, &config),
            Err(CoreError::EmptyIntentSubset)
        ));
        assert!(matches!(
            FlexErModel::fit_subset_for_target(&ctx, &e, &[99], 99, &config),
            Err(CoreError::IntentOutOfRange(99, _))
        ));
        // target not in subset
        assert!(FlexErModel::fit_subset_for_target(&ctx, &e, &[1, 2], 0, &config).is_err());
    }

    #[test]
    fn embedding_count_checked() {
        let (ctx, base, config) = setup();
        let e = base.embeddings();
        let too_few = &e[..2];
        assert!(matches!(
            FlexErModel::fit_from_embeddings(&ctx, too_few, &config),
            Err(CoreError::IntentOutOfRange(2, _))
        ));
    }
}
